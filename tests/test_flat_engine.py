"""Flat-array kinetic engine: interner, marking kernel, engine equivalence.

Three layers of defense for the ``engine="flat"`` option:

* unit tests for :class:`LocationInterner` (dense, collision-free, stable
  ids over mixed hashable location types; per-task caching semantics);
* a randomized differential test pitting :func:`mark_round` against a
  straight port of the dict executor's Phase I/II loops;
* whole-app equivalence: every app × every round-based executor must
  produce bit-identical simulated cycles, commit counts, rounds and final
  state snapshots under both engines (the tentpole's schedule-invariance
  contract).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro import SimMachine
from repro.apps import APPS
from repro.core.flat import FlatRWIndex, LocationInterner, MarkBuffers, mark_round
from repro.core.flat.kernels import UNMARKED
from repro.core.task import Task

from .helpers import TINY_STATES


class TestLocationInterner:
    def test_dense_collision_free_over_mixed_types(self):
        interner = LocationInterner()
        locations = [
            ("vertex", 17),
            "row:3",
            42,
            ("ball", 3, "x"),
            frozenset({1, 2}),
            ("vertex", 18),
            0,
            "row:4",
        ]
        ids = [interner.intern(loc) for loc in locations]
        # Dense: exactly 0..n-1, each allocated in first-sight order.
        assert ids == list(range(len(locations)))
        assert len(interner) == len(locations)
        # Collision-free inverse.
        for loc, dense in zip(locations, ids):
            assert interner.location_of(dense) == loc

    def test_ids_stable_under_churn(self):
        interner = LocationInterner()
        first = {loc: interner.intern(loc) for loc in ["a", ("b", 1), 7]}
        # Interleave thousands of new locations...
        interner.intern_all([("churn", i) for i in range(2000)])
        # ...and the original ids are unchanged (never recycled).
        for loc, dense in first.items():
            assert interner.intern(loc) == dense
        assert len(interner) == 3 + 2000

    def test_intern_all_matches_intern(self):
        interner = LocationInterner()
        locs = [("x", i % 5) for i in range(12)]
        arr = interner.intern_all(locs)
        assert arr.dtype == np.int32
        assert arr.tolist() == [interner.intern(loc) for loc in locs]
        assert len(interner) == 5

    def _task(self, rw, writes, tid=0):
        task = Task(item=None, priority=tid, tid=tid)
        task.rw_set = tuple(rw)
        task.write_set = frozenset(writes)
        task.rw_valid = True
        return task

    def test_task_lists_cached_and_arrays_agree(self):
        interner = LocationInterner()
        task = self._task(["a", ("b", 1), "c"], {"a", "c"})
        id_list, w_list = interner.task_lists(task)
        assert w_list == [True, False, True]
        ids, wmask = interner.task_arrays(task)
        assert ids.tolist() == id_list
        assert wmask.tolist() == w_list
        # Same rw-set tuple → cache hit, identical list objects.
        assert interner.task_lists(task)[0] is id_list

    def test_cache_misses_on_rw_set_refresh_and_interner_change(self):
        interner = LocationInterner()
        task = self._task(["a", "b"], {"a"})
        id_list = interner.task_lists(task)[0]
        # Kinetic refresh allocates a fresh tuple → miss, new ids appended.
        task.rw_set = ("a", "d")
        assert interner.task_lists(task)[0] is not id_list
        assert interner.task_lists(task)[0] == [0, 2]
        # A different interner never sees another run's cache.
        other = LocationInterner()
        assert other.task_lists(task)[0] == [0, 1]


class TestFlatRWIndexSlots:
    def test_slot_recycling_and_order_preserving_removal(self):
        index = FlatRWIndex()
        tasks = [Task(None, i, i) for i in range(4)]
        for i, task in enumerate(tasks):
            assert index.add(task, [0, i + 1], [True, False]) == 3
        assert [s for s, _ in [index.bucket(0)]][0] == [0, 1, 2, 3]
        index.remove(tasks[1])
        # Shift-delete keeps the survivors in insertion order.
        assert index.bucket(0)[0] == [0, 2, 3]
        # Freed slot is recycled by the next add.
        late = Task(None, 9, 9)
        index.add(late, [0], [False])
        assert index.slot_of(late) == 1
        assert index.bucket(0) == ([0, 2, 3, 1], [True, True, True, False])
        assert index.task_of_slot(1) is late
        with pytest.raises(ValueError):
            index.add(late, [0], [False])


def _mark_round_reference(tasks, rw_visit, mark_cas):
    """Straight port of the IKDG dict executor's Phase I/II loops."""
    marks_all = {}
    marks_writer = {}
    mark_costs = []
    min_task = None
    for task in tasks:
        if min_task is None or task.sort_key < min_task.sort_key:
            min_task = task
        cas = 0
        for loc in task.rw_set:
            holder = marks_all.get(loc)
            if holder is None or task.sort_key < holder.sort_key:
                marks_all[loc] = task
            cas += 1
            if loc in task.write_set:
                holder = marks_writer.get(loc)
                if holder is None or task.sort_key < holder.sort_key:
                    marks_writer[loc] = task
                cas += 1
        mark_costs.append(rw_visit * max(1, len(task.rw_set)) + mark_cas * cas)

    def owns(task):
        for loc in task.rw_set:
            if loc in task.write_set:
                if marks_all[loc] is not task:
                    return False
            else:
                writer = marks_writer.get(loc)
                if writer is not None and writer.sort_key < task.sort_key:
                    return False
        return True

    return [owns(t) for t in tasks], mark_costs, tasks.index(min_task)


class TestMarkRound:
    # cutoff=0 forces the vector body, a huge cutoff forces the scalar
    # body: both must be exact against the dict reference.
    @pytest.mark.parametrize("cutoff", [0, 10**9], ids=["vector", "scalar"])
    def test_differential_vs_dict_reference(self, cutoff, monkeypatch):
        from repro.core.flat import kernels

        monkeypatch.setattr(kernels, "VECTOR_CUTOFF", cutoff)
        rng = random.Random(42)
        interner = LocationInterner()
        buffers = MarkBuffers()
        rw_visit, mark_cas = 3.0, 7.0
        for trial in range(120):
            w = rng.randrange(1, 24)
            tuple_pr = rng.random() < 0.5  # one priority kind per round
            tasks = []
            for tid in range(w):
                pr = rng.randrange(6)
                task = Task(None, (pr, rng.randrange(3)) if tuple_pr else pr, tid)
                n = rng.randrange(0, 6)
                rw = tuple(dict.fromkeys(("loc", rng.randrange(40)) for _ in range(n)))
                task.rw_set = rw
                task.write_set = frozenset(
                    loc for loc in rw if rng.random() < 0.5
                )
                tasks.append(task)
            caches = []
            for t in tasks:
                interner.task_lists(t)
                caches.append(t.flat_cache)
            got = mark_round(tasks, caches, buffers, rw_visit, mark_cas)
            want_owner, want_costs, want_min = _mark_round_reference(
                tasks, rw_visit, mark_cas
            )
            assert got.owner == want_owner, f"trial {trial}"
            assert got.mark_costs == want_costs, f"trial {trial}"
            assert got.min_index == want_min, f"trial {trial}"
            assert got.lens == [len(t.rw_set) for t in tasks]
        # Sparse reset left no stale marks behind (vector body only; the
        # scalar body never touches the persistent buffers).
        assert (buffers.marks_all == UNMARKED).all()
        assert (buffers.marks_writer == UNMARKED).all()

    def test_empty_rw_sets_own_vacuously(self):
        tasks = [Task(None, i, i) for i in range(3)]
        interner = LocationInterner()
        for t in tasks:
            interner.task_lists(t)
        got = mark_round(tasks, [t.flat_cache for t in tasks], MarkBuffers(), 2.0, 5.0)
        assert all(got.owner)
        assert got.mark_costs == [2.0, 2.0, 2.0]  # rw_visit * max(1, 0)


ROUND_EXECUTORS = ["ikdg", "kdg-rna", "level-by-level"]


def _run(spec, state, impl, engine):
    result = spec.run(state, impl, SimMachine(4), engine=engine)
    return (
        result.elapsed_cycles,
        result.executed,
        result.rounds,
        result.machine.stats.breakdown(),
        spec.snapshot(state),
    )


@pytest.mark.parametrize("impl", ROUND_EXECUTORS)
@pytest.mark.parametrize("app", sorted(APPS))
def test_flat_engine_bit_identical_across_apps(app, impl):
    spec = APPS[app]
    make_state = TINY_STATES[app]
    assert _run(spec, make_state(), impl, "dict") == _run(
        spec, make_state(), impl, "flat"
    )


def test_flat_engine_bit_identical_seeded_billiards_small():
    # One paper-scale point on top of the tiny matrix: the billiards app is
    # the most kinetic workload (rw-sets refresh every commit).
    spec = APPS["billiards"]
    assert _run(spec, spec.make_small(), "ikdg", "dict") == _run(
        spec, spec.make_small(), "ikdg", "flat"
    )


class TestInterningRWSetContext:
    """The flat-engine visitor context must mirror ``RWSetContext``."""

    def test_randomized_parity_with_dict_context(self):
        from repro.core.context import InterningRWSetContext, RWSetContext

        rng = random.Random(7)
        interner = LocationInterner()
        for trial in range(200):
            ops = [
                (rng.random() < 0.4, ("loc", rng.randrange(8)))
                for _ in range(rng.randrange(0, 12))
            ]
            ref = RWSetContext()
            ctx = InterningRWSetContext(interner)
            for is_write, loc in ops:
                (ref.write if is_write else ref.read)(loc)
                (ctx.write if is_write else ctx.read)(loc)
            # Pre-finalize property views agree with the dict context.
            assert ctx.rw_set == ref.rw_set, f"trial {trial}"
            assert ctx.write_set == ref.write_set, f"trial {trial}"
            task = Task(None, 0, trial)
            ctx.finalize(task)
            assert task.rw_set == ref.rw_set
            assert task.write_set == ref.write_set
            assert task.rw_valid
            bound, rw, ids, w_list, wids, rids = task.flat_cache
            assert bound is interner
            assert rw is task.rw_set
            # Dense ids line up with the interner, writer flags with the
            # write-set, and the split views partition ids in order.
            assert ids == [interner.intern(loc) for loc in rw]
            assert w_list == [loc in task.write_set for loc in rw]
            assert wids == [i for i, w in zip(ids, w_list) if w]
            assert rids == [i for i, w in zip(ids, w_list) if not w]

    def test_read_upgraded_to_write_refilters_split_views(self):
        from repro.core.context import InterningRWSetContext

        ctx = InterningRWSetContext(LocationInterner())
        ctx.read("a")
        ctx.write("b")
        ctx.write("a")  # upgrade: 'a' keeps its first-declaration position
        task = Task(None, 0, 0)
        ctx.finalize(task)
        assert task.rw_set == ("a", "b")
        assert task.write_set == frozenset({"a", "b"})
        _, _, ids, w_list, wids, rids = task.flat_cache
        assert w_list == [True, True]
        assert wids == ids
        assert rids == []


def _pool_tasks(rng, interner, w, *, numeric=True, max_loc=40):
    tasks = []
    for tid in range(w):
        pr = rng.randrange(6)
        task = Task(None, pr if numeric else (pr, tid), tid)
        n = rng.randrange(0, 6)
        rw = tuple(dict.fromkeys(("loc", rng.randrange(max_loc)) for _ in range(n)))
        task.rw_set = rw
        task.write_set = frozenset(loc for loc in rw if rng.random() < 0.5)
        interner.task_lists(task)
        tasks.append(task)
    return tasks


class TestRoundPool:
    def _pooled(self, pool, tasks, slots, rw_visit=3.0, mark_cas=7.0):
        from repro.core.flat.pool import pooled_mark_round

        return pooled_mark_round(
            pool, tasks, slots, MarkBuffers(), rw_visit, mark_cas
        )

    @pytest.mark.parametrize("cutoff", [0, 10**9], ids=["vector", "scalar"])
    def test_matches_mark_round_under_churn(self, cutoff, monkeypatch):
        # Random add/remove churn across rounds: the pooled kernel must
        # equal the per-round kernel on the same window, slot recycling,
        # deferred flushes and compaction notwithstanding.
        from repro.core.flat import kernels, pool as pool_mod
        from repro.core.flat.pool import RoundPool

        monkeypatch.setattr(kernels, "VECTOR_CUTOFF", cutoff)
        monkeypatch.setattr(pool_mod, "VECTOR_CUTOFF", cutoff)
        rng = random.Random(99)
        interner = LocationInterner()
        pool = RoundPool()
        live: list[tuple[Task, int]] = []
        for _ in range(30):
            for task in _pool_tasks(rng, interner, rng.randrange(1, 8)):
                live.append((task, pool.add(task, task.flat_cache)))
            rng.shuffle(live)
            for _ in range(rng.randrange(0, len(live))):
                _, slot = live.pop()
                pool.remove(slot)
            if not live:
                continue
            tasks = [t for t, _ in live]
            slots = [s for _, s in live]
            got = self._pooled(pool, tasks, slots)
            want = mark_round(
                tasks, [t.flat_cache for t in tasks], MarkBuffers(), 3.0, 7.0
            )
            assert got == want

    def test_scalar_rounds_never_materialize_arrays(self):
        from repro.core.flat.pool import RoundPool

        rng = random.Random(1)
        interner = LocationInterner()
        pool = RoundPool()
        tasks = _pool_tasks(rng, interner, 6)
        slots = [pool.add(t, t.flat_cache) for t in tasks]
        self._pooled(pool, tasks, slots)
        # Below the vector cutoff nothing was flushed: the entry pool is
        # untouched and the insertions are still buffered.
        assert pool.top == 0
        assert pool._pending_slots

    def test_recycled_slot_with_pending_flush_lays_out_current_entries(self):
        from repro.core.flat.pool import RoundPool

        interner = LocationInterner()
        pool = RoundPool()
        a = Task(None, 0, 0)
        a.rw_set = (("loc", 0), ("loc", 1), ("loc", 2))
        a.write_set = frozenset({("loc", 0)})
        interner.task_lists(a)
        slot_a = pool.add(a, a.flat_cache)
        pool.remove(slot_a)  # still pending: flush was never forced
        b = Task(None, 1, 1)
        b.rw_set = (("loc", 3),)
        b.write_set = frozenset({("loc", 3)})
        interner.task_lists(b)
        slot_b = pool.add(b, b.flat_cache)
        assert slot_b == slot_a  # recycled while its first add is pending
        pool.flush()
        # The slot's metadata describes the *current* occupant, and its
        # entry block holds b's single location, not a stale 3-long block.
        assert int(pool.lens[slot_b]) == 1
        assert int(pool.wlens[slot_b]) == 1
        assert int(pool.tid[slot_b]) == 1
        start = int(pool.starts[slot_b])
        assert int(pool.loc[start]) == interner.intern(("loc", 3))

    def test_tuple_priorities_stay_numeric(self):
        # The rank encoder admits the apps' tuple priorities, so the pool
        # no longer demotes on them (the PR-6 caveat) — and the vector
        # kernel result still matches the list-based reference.
        from repro.core.flat.pool import RoundPool

        rng = random.Random(5)
        interner = LocationInterner()
        pool = RoundPool()
        tasks = _pool_tasks(rng, interner, 10, numeric=False)
        slots = [pool.add(t, t.flat_cache) for t in tasks]
        assert pool.numeric
        got = self._pooled(pool, tasks, slots)
        want = mark_round(
            tasks, [t.flat_cache for t in tasks], MarkBuffers(), 3.0, 7.0
        )
        assert got == want
        # Huge ints are encodable too: ranks are int64 key-id indirections,
        # not float64 images, so 2**53+1 no longer demotes.
        pool2 = RoundPool()
        huge = Task(None, 2**53 + 1, 0)
        huge.rw_set = ()
        huge.write_set = frozenset()
        interner.task_lists(huge)
        pool2.add(huge, huge.flat_cache)
        assert pool2.numeric

    def test_non_encodable_priority_demotes_to_scalar_kernel(self):
        from repro.core.flat.pool import RoundPool

        rng = random.Random(5)
        interner = LocationInterner()
        pool = RoundPool()
        tasks = _pool_tasks(rng, interner, 10)
        # NaN breaks ordering-vs-equality consistency; the encoder rejects
        # it and the pool permanently falls back to the scalar kernel.
        poison = Task(None, float("nan"), len(tasks))
        poison.rw_set = (("loc", 0),)
        poison.write_set = frozenset()
        interner.task_lists(poison)
        tasks.append(poison)
        slots = [pool.add(t, t.flat_cache) for t in tasks]
        assert not pool.numeric
        got = self._pooled(pool, tasks[:-1], slots[:-1])
        want = mark_round(
            tasks[:-1], [t.flat_cache for t in tasks[:-1]], MarkBuffers(), 3.0, 7.0
        )
        assert got == want


class TestFlatBatchBuild:
    """Virgin-index sort-and-sweep vs. one-at-a-time insertion."""

    def _graph_shape(self, kdg, tasks):
        graph = kdg.graph
        return [
            (
                sorted(t.tid for t in graph.predecessors(task)),
                sorted(t.tid for t in graph.successors(task)),
            )
            for task in tasks
        ]

    def _make(self, specs):
        tasks = []
        for tid, (priority, rw, writes) in enumerate(specs):
            task = Task(None, priority, tid)
            task.rw_set = tuple(rw)
            task.write_set = frozenset(writes)
            tasks.append(task)
        return tasks

    def _check_batch_equals_sequential(self, specs):
        from repro.core.kdg import KDG

        batch_kdg = KDG(interner=LocationInterner())
        batch_tasks = self._make(specs)
        for t in batch_tasks:
            batch_kdg.interner.task_lists(t)
        batch_ops = batch_kdg.add_tasks(batch_tasks)

        seq_kdg = KDG(interner=LocationInterner())
        seq_tasks = self._make(specs)
        seq_ops = []
        for t in seq_tasks:
            seq_kdg.interner.task_lists(t)
            # One-task batches take the insertion-interleaved path.
            seq_ops.extend(seq_kdg.add_tasks([t]))

        assert batch_ops == seq_ops
        assert self._graph_shape(batch_kdg, batch_tasks) == self._graph_shape(
            seq_kdg, seq_tasks
        )

    def test_randomized_against_sequential_insertion(self):
        rng = random.Random(2024)
        for _ in range(40):
            n = rng.randrange(16, 40)  # >= 16 takes the virgin build
            specs = []
            for _ in range(n):
                rw = tuple(
                    dict.fromkeys(("loc", rng.randrange(12)) for _ in range(4))
                )
                writes = frozenset(loc for loc in rw if rng.random() < 0.4)
                specs.append((rng.randrange(8), rw, writes))
            self._check_batch_equals_sequential(specs)

    def test_group_with_even_writer_count(self):
        # Regression: np.add.reduceat over the writer bits yields int64
        # *counts*; a bitwise AND against the size mask silently dropped
        # groups whose writer count was even (1 & 2 == 0).
        shared = ("shared", 0)
        specs = []
        for tid in range(20):
            rw = [("private", tid), shared]
            writes = {shared} if tid < 2 else set()  # exactly 2 writers
            specs.append((tid, rw, writes))
        self._check_batch_equals_sequential(specs)
