"""Unit tests for the serial baseline executor."""

import pytest

from repro import SimMachine
from repro.runtime import run_serial

from .helpers import ChainCounter


class TestRunSerial:
    def test_executes_everything_in_priority_order(self):
        app = ChainCounter(cells=3, steps=5)
        result = run_serial(app.algorithm())
        assert result.executed == 15
        assert app.sums == app.expected_sums()
        # History must be sorted by (step, cell): global priority order.
        assert app.history == sorted(app.history)

    def test_rejects_multithread_machine(self):
        app = ChainCounter()
        with pytest.raises(ValueError):
            run_serial(app.algorithm(), SimMachine(2))

    def test_charges_execute_and_schedule(self):
        from repro.machine import Category

        app = ChainCounter(cells=2, steps=2, work=100.0)
        result = run_serial(app.algorithm())
        assert result.stats.total(Category.EXECUTE) == pytest.approx(4 * 100.0)
        assert result.stats.total(Category.SCHEDULE) > 0

    def test_linear_baseline_cheaper_than_heap(self):
        heap_app = ChainCounter(cells=8, steps=20)
        heap_cycles = run_serial(heap_app.algorithm(), baseline="heap").elapsed_cycles
        lin_app = ChainCounter(cells=8, steps=20)
        lin_cycles = run_serial(lin_app.algorithm(), baseline="linear").elapsed_cycles
        assert lin_cycles < heap_cycles

    def test_unknown_baseline_rejected(self):
        with pytest.raises(ValueError):
            run_serial(ChainCounter().algorithm(), baseline="quantum")

    def test_checked_mode_enforces_rw_sets(self):
        from repro.core import AlgorithmProperties, OrderedAlgorithm, RWSetViolation

        def visit(item, ctx):
            ctx.write(("cell", 0))

        def bad_body(item, ctx):
            ctx.access(("cell", 99))  # undeclared

        algorithm = OrderedAlgorithm(
            name="bad",
            initial_items=[1],
            priority=lambda x: x,
            visit_rw_sets=visit,
            apply_update=bad_body,
            properties=AlgorithmProperties(stable_source=True),
        )
        with pytest.raises(RWSetViolation):
            run_serial(algorithm, checked=True)

    def test_result_metadata(self):
        result = run_serial(ChainCounter(cells=1, steps=1).algorithm())
        assert result.algorithm == "chain-counter"
        assert result.executor == "serial"
        assert result.elapsed_seconds > 0
