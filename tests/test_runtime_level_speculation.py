"""Unit tests for the level-by-level and speculation executors."""

import pytest

from repro import AlgorithmProperties, SimMachine
from repro.machine import Category
from repro.runtime import run_level_by_level, run_serial, run_speculation

from .helpers import ChainCounter


class TestLevelByLevel:
    def test_matches_serial_state(self):
        serial = ChainCounter(cells=4, steps=5)
        run_serial(serial.algorithm())
        parallel = ChainCounter(cells=4, steps=5)
        result = run_level_by_level(
            parallel.algorithm(level_of=lambda item: item[0]), SimMachine(4)
        )
        assert parallel.sums == serial.sums
        assert result.executed == 20

    def test_level_statistics(self):
        app = ChainCounter(cells=4, steps=5)
        result = run_level_by_level(
            app.algorithm(level_of=lambda item: item[0]), SimMachine(2)
        )
        assert result.metrics["num_levels"] == 5
        assert result.metrics["avg_tasks_per_level"] == pytest.approx(4.0)
        assert result.metrics["max_tasks_per_level"] == 4

    def test_requires_monotonicity(self):
        app = ChainCounter()
        algorithm = app.algorithm(
            properties=AlgorithmProperties(stable_source=True)
        )
        with pytest.raises(ValueError, match="monotonicity"):
            run_level_by_level(algorithm, SimMachine(2))

    def test_without_level_of_each_priority_is_a_level(self):
        app = ChainCounter(cells=3, steps=2)
        result = run_level_by_level(app.algorithm(), SimMachine(2))
        # Priorities (step, cell) are all distinct: 6 levels of 1 task.
        assert result.metrics["num_levels"] == 6
        assert result.metrics["avg_tasks_per_level"] == pytest.approx(1.0)

    def test_same_level_conflicts_resolved_by_subrounds(self):
        # All tasks share one cell and one level: marking sub-rounds must
        # serialize them correctly.
        from repro.core import OrderedAlgorithm

        order = []
        algorithm = OrderedAlgorithm(
            name="one-level",
            initial_items=[2, 0, 1],
            priority=lambda x: x,
            visit_rw_sets=lambda item, ctx: ctx.write("cell"),
            apply_update=lambda item, ctx: order.append(item),
            properties=AlgorithmProperties(stable_source=True, monotonic=True,
                                           no_new_tasks=True),
            level_of=lambda item: 0,
        )
        result = run_level_by_level(algorithm, SimMachine(4))
        assert order == [0, 1, 2]
        assert result.metrics["num_levels"] == 1
        assert result.rounds == 3  # one sub-round per conflicting task

    def test_barrier_cost_hurts_many_levels(self):
        """Fine-grained levels (AVI-like) make level-by-level slow."""
        fine = ChainCounter(cells=2, steps=20, work=50.0)
        fine_result = run_level_by_level(
            fine.algorithm(level_of=lambda item: item[0]), SimMachine(8)
        )
        serial = ChainCounter(cells=2, steps=20, work=50.0)
        serial_result = run_serial(serial.algorithm())
        assert fine_result.elapsed_cycles > serial_result.elapsed_cycles


class TestSpeculation:
    def test_matches_serial_state(self):
        serial = ChainCounter(cells=4, steps=5)
        run_serial(serial.algorithm())
        spec = ChainCounter(cells=4, steps=5)
        result = run_speculation(spec.algorithm(), SimMachine(4))
        assert spec.sums == serial.sums
        assert result.executed == 20
        assert result.metrics["commits"] == 20

    def test_execution_order_is_serial_order(self):
        app = ChainCounter(cells=3, steps=4)
        run_speculation(app.algorithm(), SimMachine(4))
        assert app.history == sorted(app.history)

    def test_no_aborts_for_disjoint_tasks(self):
        app = ChainCounter(cells=6, steps=1)
        result = run_speculation(app.algorithm(), SimMachine(6))
        assert result.metrics["aborts"] == 0

    def test_conflicting_tasks_cause_aborts_or_parks(self):
        # All tasks on one cell, plenty of threads: later tasks grabbed
        # speculatively conflict with the earliest.
        app = ChainCounter(cells=1, steps=1)
        from repro.core import AlgorithmProperties, OrderedAlgorithm

        body_calls = []
        algorithm = OrderedAlgorithm(
            name="conflict",
            initial_items=list(range(6)),
            priority=lambda x: x,
            visit_rw_sets=lambda item, ctx: ctx.write("hot"),
            apply_update=lambda item, ctx: (ctx.work(200), body_calls.append(item)),
            properties=AlgorithmProperties(stable_source=True, monotonic=True,
                                           no_new_tasks=True),
        )
        result = run_speculation(algorithm, SimMachine(6))
        assert body_calls == list(range(6))
        # Hot conflicts show up as aborts and/or commit-queue time.
        breakdown = result.breakdown()
        assert result.metrics["aborts"] > 0 or breakdown[Category.COMMIT] > 0

    def test_commit_queue_time_grows_with_threads(self):
        small = ChainCounter(cells=16, steps=4, work=60.0)
        r2 = run_speculation(small.algorithm(), SimMachine(2))
        big = ChainCounter(cells=16, steps=4, work=60.0)
        r8 = run_speculation(big.algorithm(), SimMachine(8))
        frac2 = r2.stats.fractions()[Category.COMMIT]
        frac8 = r8.stats.fractions()[Category.COMMIT]
        assert frac8 >= frac2

    def test_single_thread_has_no_aborts(self):
        app = ChainCounter(cells=2, steps=4)
        result = run_speculation(app.algorithm(), SimMachine(1))
        assert result.metrics["aborts"] == 0

    def test_work_conserved_in_execute_category(self):
        app = ChainCounter(cells=3, steps=3, work=100.0)
        result = run_speculation(app.algorithm(), SimMachine(2))
        executed_plus_aborted = result.breakdown()[Category.EXECUTE] + result.breakdown()[
            Category.ABORT
        ]
        assert executed_plus_aborted >= 9 * 100.0
