"""Unit tests for algorithm properties, the spec object, and the loop API."""

import pytest

from repro import AlgorithmProperties, SimMachine, for_each_ordered
from repro.core import OrderedAlgorithm
from repro.runtime import choose_executor

from .helpers import ChainCounter


class TestAlgorithmProperties:
    def test_defaults_all_false(self):
        p = AlgorithmProperties()
        assert not p.stable_source
        assert not p.monotonic
        assert not p.conventional_task_graph
        assert not p.supports_asynchronous

    def test_structure_based_implies_non_increasing(self):
        p = AlgorithmProperties(structure_based_rw_sets=True)
        assert p.non_increasing_rw_sets

    def test_conventional_task_graph(self):
        p = AlgorithmProperties(no_new_tasks=True, non_increasing_rw_sets=True)
        assert p.conventional_task_graph

    def test_async_requires_structure_based(self):
        p = AlgorithmProperties(stable_source=True)
        assert not p.supports_asynchronous

    def test_async_with_stable_source(self):
        p = AlgorithmProperties(stable_source=True, structure_based_rw_sets=True)
        assert p.supports_asynchronous

    def test_async_with_local_test(self):
        p = AlgorithmProperties(
            local_safe_source_test=True, structure_based_rw_sets=True
        )
        assert p.supports_asynchronous


class TestChooseExecutor:
    def test_default_falls_back_to_ikdg(self):
        assert choose_executor(AlgorithmProperties(stable_source=True)) == "ikdg"

    def test_async_capable_chooses_rna(self):
        p = AlgorithmProperties(stable_source=True, structure_based_rw_sets=True)
        assert choose_executor(p) == "kdg-rna"

    def test_conventional_graph_chooses_rna(self):
        p = AlgorithmProperties(
            stable_source=True, no_new_tasks=True, non_increasing_rw_sets=True
        )
        assert choose_executor(p) == "kdg-rna"

    def test_structure_based_alone_not_enough(self):
        # Billiards: structure-based but global safe test -> IKDG.
        p = AlgorithmProperties(monotonic=True, structure_based_rw_sets=True)
        assert choose_executor(p) == "ikdg"


class TestOrderedAlgorithmSpec:
    def test_unstable_requires_safe_test(self):
        with pytest.raises(ValueError):
            OrderedAlgorithm(
                name="bad",
                initial_items=[],
                priority=lambda x: x,
                visit_rw_sets=lambda item, ctx: None,
                apply_update=lambda item, ctx: None,
                properties=AlgorithmProperties(stable_source=False),
            )

    def test_compute_rw_set_binds_task(self):
        app = ChainCounter()
        algorithm = app.algorithm()
        task = algorithm.task_factory().make((1, 2))
        rw = algorithm.compute_rw_set(task)
        assert rw == (("cell", 2),)
        assert task.rw_set == rw
        assert task.write_set == frozenset(rw)

    def test_level_defaults_to_priority(self):
        algorithm = ChainCounter().algorithm()
        task = algorithm.task_factory().make((3, 1))
        assert algorithm.level(task) == task.priority

    def test_level_of_override(self):
        algorithm = ChainCounter().algorithm(level_of=lambda item: item[0])
        task = algorithm.task_factory().make((3, 1))
        assert algorithm.level(task) == 3


class TestForEachOrdered:
    def test_runs_and_returns_result(self):
        app = ChainCounter(cells=3, steps=4)
        result = for_each_ordered(
            initial_items=[(1, c) for c in range(3)],
            priority=lambda item: (item[0], item[1]),
            visit_rw_sets=lambda item, ctx: ctx.write(("cell", item[1])),
            apply_update=app.algorithm().apply_update,
            properties=app.algorithm().properties,
            name="chain",
            machine=SimMachine(2),
        )
        assert result.executed == 3 * 4
        assert result.elapsed_cycles > 0

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            for_each_ordered(
                initial_items=[],
                priority=lambda x: x,
                visit_rw_sets=lambda i, c: None,
                apply_update=lambda i, c: None,
                properties=AlgorithmProperties(stable_source=True),
                executor="bogus",
            )

    def test_explicit_executor_honored(self):
        app = ChainCounter(cells=2, steps=2)
        algorithm = app.algorithm()
        result = for_each_ordered(
            initial_items=algorithm.initial_items,
            priority=algorithm.priority,
            visit_rw_sets=algorithm.visit_rw_sets,
            apply_update=algorithm.apply_update,
            properties=algorithm.properties,
            executor="serial",
        )
        assert result.executor == "serial"
