"""Tests for the wall-clock benchmark suite (`repro bench`).

These never assert on wall-clock *values* — timing is machine-dependent —
only on the harness mechanics: registry shape, payload schema, simulated-
cycle determinism, baseline comparison/regression/schedule-change logic,
and the CLI wiring.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import BENCHES, compare, run_suite
from repro.bench.report import (
    SCHEMA,
    load_baseline_section,
    update_baseline_file,
    write_results,
)
from repro.bench.timing import best_of, timed_payload
from repro.cli import main


class TestTiming:
    def test_best_of_returns_min_and_all_samples(self):
        calls = []

        def fn():
            calls.append(None)

        best, times = best_of(fn, repeats=3)
        # 1 warmup + 3 timed.
        assert len(calls) == 4
        assert len(times) == 3
        assert best == min(times)

    def test_best_of_passes_fresh_setup_argument(self):
        seen = []
        counter = iter(range(100))
        best_of(seen.append, repeats=2, setup=lambda: next(counter))
        # warmup consumed 0; timed runs got 1 and 2.
        assert seen == [0, 1, 2]

    def test_best_of_rejects_zero_repeats(self):
        with pytest.raises(ValueError, match="repeats"):
            best_of(lambda: None, repeats=0)

    def test_timed_payload_schema(self):
        payload = timed_payload(lambda: None, repeats=2, ops=10, extra_field=7)
        assert set(payload) >= {
            "wall_seconds", "ops", "per_op_ns", "repeats", "all_seconds",
        }
        assert payload["ops"] == 10
        assert payload["extra_field"] == 7
        assert len(payload["all_seconds"]) == 2


class TestRegistry:
    def test_names_and_groups_are_well_formed(self):
        assert BENCHES
        for name, b in BENCHES.items():
            assert b.name == name
            assert b.group in ("hotpath", "e2e", "mp")
            prefix = name.split("/")[0]
            assert prefix in ("micro", "exec", "e2e")
            # e2e group iff e2e/ prefix; mp group iff exec/mp_scaling/.
            assert (b.group == "e2e") == (prefix == "e2e")
            assert (b.group == "mp") == name.startswith("exec/mp_scaling/")

    def test_expected_coverage(self):
        # One executor bench per runtime loop, one e2e bench per app.
        for name in (
            "micro/task_key",
            "exec/ikdg_independent",
            "exec/kdg_rna_rounds",
            "exec/kdg_rna_async",
            "exec/level_by_level",
            "exec/serial",
            "exec/speculation",
        ):
            assert name in BENCHES
        e2e_apps = {n.split("/")[1] for n in BENCHES if n.startswith("e2e/")}
        assert e2e_apps >= {"avi", "bfs", "billiards", "des", "lu", "mst", "treesum"}

    def test_mp_scaling_ladder_registered(self):
        # One inline rung plus the 1/2/4-worker rungs (satellite: the
        # mp-scaling bench family, EXPERIMENTS.md's scaling table).
        for label in ("inline", "w1", "w2", "w4"):
            assert f"exec/mp_scaling/{label}" in BENCHES


class TestRunSuite:
    def test_filtered_quick_run_produces_schema(self):
        results = run_suite(
            quick=True, repeats=1, name_filter="micro/task_key", verbose=False
        )
        assert results["schema"] == SCHEMA
        assert results["quick"] is True
        assert set(results["benchmarks"]) == {"micro/task_key"}
        payload = results["benchmarks"]["micro/task_key"]
        assert payload["group"] == "hotpath"
        assert payload["wall_seconds"] > 0

    def test_unknown_filter_raises(self):
        with pytest.raises(ValueError, match="no benchmarks match"):
            run_suite(quick=True, repeats=1, name_filter="nope/never", verbose=False)

    def test_backend_mp_requires_flat_engine(self):
        with pytest.raises(ValueError, match="requires engine='flat'"):
            run_suite(quick=True, repeats=1, name_filter="micro/task_key",
                      verbose=False, engine="dict", backend="mp")
        with pytest.raises(ValueError, match="unknown backend"):
            run_suite(quick=True, repeats=1, name_filter="micro/task_key",
                      verbose=False, engine="flat", backend="threads")

    def test_backend_recorded_in_results(self):
        results = run_suite(
            quick=True, repeats=1, name_filter="micro/task_key",
            verbose=False, engine="flat", backend="mp", workers=2,
        )
        assert results["backend"] == "mp"
        assert results["workers"] == 2
        inline = run_suite(
            quick=True, repeats=1, name_filter="micro/task_key", verbose=False
        )
        assert inline["backend"] == "inline"
        assert inline["workers"] is None

    def test_executor_bench_sim_cycles_deterministic(self):
        # The schedule-invariance check rides on sim_cycles being exactly
        # reproducible run-to-run on the same code.
        one = BENCHES["exec/ikdg_chains"].fn(True, 1)
        two = BENCHES["exec/ikdg_chains"].fn(True, 1)
        assert one["sim_cycles"] == two["sim_cycles"]
        assert one["executed"] == two["executed"] > 0


def _fake_results(**walls):
    """Results doc with given name -> (wall, sim_cycles|None, group)."""
    benchmarks = {}
    for name, (wall, cycles, group) in walls.items():
        payload = {"wall_seconds": wall, "ops": 1, "per_op_ns": 0.0, "group": group}
        if cycles is not None:
            payload["sim_cycles"] = cycles
        benchmarks[name] = payload
    return {
        "schema": SCHEMA,
        "quick": True,
        "repeats": 1,
        "host": {"python": "x", "platform": "y"},
        "benchmarks": benchmarks,
    }


class TestCompare:
    def test_speedups_and_aggregates(self):
        base = _fake_results(a=(2.0, 100.0, "hotpath"), b=(1.0, None, "e2e"))
        now = _fake_results(a=(1.0, 100.0, "hotpath"), b=(0.5, None, "e2e"))
        cmp = compare(now, base, threshold=1.5)
        assert cmp["per_benchmark"]["a"]["speedup"] == pytest.approx(2.0)
        assert cmp["aggregate_speedup_hotpath"] == pytest.approx(2.0)
        assert cmp["aggregate_speedup_e2e"] == pytest.approx(2.0)
        assert cmp["aggregate_speedup_all"] == pytest.approx(2.0)
        assert cmp["regressions"] == []
        assert cmp["schedule_changes"] == []

    def test_detects_wall_clock_regression(self):
        base = _fake_results(a=(1.0, None, "hotpath"))
        now = _fake_results(a=(1.6, None, "hotpath"))
        cmp = compare(now, base, threshold=1.5)
        assert cmp["regressions"] == ["a"]
        assert cmp["per_benchmark"]["a"]["regression"] is True
        # Under the threshold: no regression flagged.
        assert compare(now, base, threshold=2.0)["regressions"] == []

    def test_detects_schedule_change_via_sim_cycles(self):
        base = _fake_results(a=(1.0, 100.0, "hotpath"))
        now = _fake_results(a=(0.5, 101.0, "hotpath"))
        cmp = compare(now, base, threshold=1.5)
        assert cmp["schedule_changes"] == ["a"]
        assert cmp["per_benchmark"]["a"]["baseline_sim_cycles"] == 100.0

    def test_benchmarks_missing_from_baseline_are_skipped(self):
        base = _fake_results(a=(1.0, None, "hotpath"))
        now = _fake_results(a=(1.0, None, "hotpath"), new=(1.0, None, "hotpath"))
        cmp = compare(now, base, threshold=1.5)
        assert "new" not in cmp["per_benchmark"]

    def test_refuses_cross_engine_baseline(self):
        base = _fake_results(a=(1.0, None, "hotpath"))
        now = dict(_fake_results(a=(1.0, None, "hotpath")), engine="flat")
        with pytest.raises(ValueError, match="engine mismatch"):
            compare(now, base, threshold=1.5)

    def test_refuses_cross_backend_baseline(self):
        # Satellite: inline-vs-mp wall times measure different code, so a
        # --compare against a mismatched-backend baseline must refuse just
        # like the cross-engine case (missing key defaults to "inline").
        base = _fake_results(a=(1.0, None, "hotpath"))
        now = dict(_fake_results(a=(1.0, None, "hotpath")), backend="mp")
        with pytest.raises(ValueError, match="backend mismatch"):
            compare(now, base, threshold=1.5)
        with pytest.raises(ValueError, match="backend mismatch"):
            compare(base, dict(_fake_results(a=(1.0, None, "hotpath")),
                               backend="mp"), threshold=1.5)

    def test_same_backend_baseline_accepted(self):
        base = dict(_fake_results(a=(1.0, None, "hotpath")), backend="mp")
        now = dict(_fake_results(a=(1.0, None, "hotpath")), backend="mp")
        assert compare(now, base, threshold=1.5)["regressions"] == []


class TestBaselineFile:
    def test_roundtrip_and_section_isolation(self, tmp_path):
        path = tmp_path / "BASELINE.json"
        quick = _fake_results(a=(1.0, 100.0, "hotpath"))
        full = dict(_fake_results(a=(4.0, 400.0, "hotpath")), quick=False)
        update_baseline_file(path, quick)
        update_baseline_file(path, full)
        q = load_baseline_section(path, quick=True)
        f = load_baseline_section(path, quick=False)
        assert q["benchmarks"]["a"]["wall_seconds"] == 1.0
        assert f["benchmarks"]["a"]["wall_seconds"] == 4.0
        # A later quick update merges without clobbering the full section.
        update_baseline_file(path, _fake_results(b=(2.0, None, "hotpath")))
        q2 = load_baseline_section(path, quick=True)
        assert set(q2["benchmarks"]) == {"a", "b"}
        assert load_baseline_section(path, quick=False)["benchmarks"]["a"][
            "wall_seconds"
        ] == 4.0

    def test_sections_record_backend(self, tmp_path):
        path = tmp_path / "BASELINE.json"
        update_baseline_file(path, dict(
            _fake_results(a=(1.0, None, "hotpath")), backend="mp"
        ))
        section = load_baseline_section(path, quick=True)
        assert section["backend"] == "mp"
        # Docs without the key (pre-mp baselines) default to inline.
        update_baseline_file(path, _fake_results(b=(1.0, None, "hotpath")))
        assert load_baseline_section(path, quick=True)["backend"] == "inline"

    def test_missing_or_invalid_baseline_returns_none(self, tmp_path):
        assert load_baseline_section(tmp_path / "nope.json", quick=True) is None
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert load_baseline_section(bad, quick=True) is None


class TestCLI:
    def test_bench_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "micro/task_key" in out
        assert "[hotpath]" in out

    def test_bench_writes_results_file(self, tmp_path):
        out = tmp_path / "BENCH_results.json"
        rc = main([
            "bench", "--quick", "--repeats", "1",
            "--filter", "micro/task_key",
            "--output", str(out), "--no-compare",
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == SCHEMA
        assert "micro/task_key" in doc["benchmarks"]

    def test_bench_fails_on_schedule_change(self, tmp_path, capsys):
        # Seed a baseline whose sim_cycles can't match, then compare.
        out = tmp_path / "res.json"
        baseline = tmp_path / "base.json"
        results = run_suite(
            quick=True, repeats=1, name_filter="exec/serial", verbose=False
        )
        doctored = json.loads(json.dumps(results))
        doctored["benchmarks"]["exec/serial"]["sim_cycles"] += 1.0
        update_baseline_file(baseline, doctored)
        rc = main([
            "bench", "--quick", "--repeats", "1", "--filter", "exec/serial",
            "--output", str(out), "--baseline", str(baseline),
        ])
        assert rc == 1
        assert "SCHEDULE CHANGE" in capsys.readouterr().err

    def test_bench_update_baseline(self, tmp_path):
        out = tmp_path / "res.json"
        baseline = tmp_path / "base.json"
        rc = main([
            "bench", "--quick", "--repeats", "1", "--filter", "micro/task_key",
            "--output", str(out), "--baseline", str(baseline),
            "--update-baseline",
        ])
        assert rc == 0
        assert load_baseline_section(baseline, quick=True) is not None

    def test_bench_refuses_cross_backend_baseline(self, tmp_path, capsys):
        # Satellite: `repro bench --compare` against a baseline recorded
        # with a different backend exits 2 without comparing.
        out = tmp_path / "res.json"
        baseline = tmp_path / "base.json"
        results = run_suite(
            quick=True, repeats=1, name_filter="micro/task_key",
            verbose=False, engine="flat",
        )
        update_baseline_file(baseline, results)
        rc = main([
            "bench", "--quick", "--repeats", "1", "--filter", "micro/task_key",
            "--engine", "flat", "--backend", "mp", "--workers", "2",
            "--output", str(out), "--baseline", str(baseline),
        ])
        assert rc == 2
        assert "backend mismatch" in capsys.readouterr().err

    def test_write_results(self, tmp_path):
        path = tmp_path / "r.json"
        write_results(path, _fake_results(a=(1.0, None, "hotpath")))
        assert json.loads(path.read_text())["schema"] == SCHEMA
