"""Tests for the relaxed-priority executor (``run_relaxed``).

The drop-in guarantee is the load-bearing property: with the knobs at
their defaults the relaxed executor is *bit-identical* to ``run_ikdg`` —
same charged cycles, same final state, same commit trace — across engines
and apps.  The relaxed modes (MultiQueue, fused delta buckets) keep the
final state serializable (validated per app) while reordering commits;
their knobs are rejected everywhere they cannot hold.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.apps import APPS
from repro.apps.sssp import DEFAULT_DELTA
from repro.machine import SimMachine
from repro.oracle.trace import TraceRecorder
from repro.runtime import run_ikdg, run_relaxed
from repro.runtime.base import RunConfig

RELAXABLE = ("bfs", "sssp", "astar")


def _run(run, spec, threads, config):
    state = spec.make_small()
    algorithm = spec.algorithm(state)
    machine = SimMachine(threads)
    result = run(algorithm, machine, config)
    return state, machine, result


class TestExactModeIsIKDG:
    @pytest.mark.parametrize("app", ["sssp", "bfs", "mst", "des"])
    @pytest.mark.parametrize("engine", ["dict", "flat"])
    def test_bit_identical_to_ikdg(self, app, engine):
        spec = APPS[app]
        fingerprints = []
        for run in (run_ikdg, run_relaxed):
            recorder = TraceRecorder()
            state, machine, _ = _run(
                run, spec, 3, RunConfig(engine=engine, recorder=recorder)
            )
            fingerprints.append(
                (
                    machine.elapsed_cycles(),
                    spec.snapshot(state),
                    [(e.tid, e.priority) for e in recorder.events],
                )
            )
        assert fingerprints[0] == fingerprints[1]

    def test_exact_mode_metrics(self):
        _, _, result = _run(run_relaxed, APPS["sssp"], 2, RunConfig())
        assert result.metrics["relaxed_mode"] == "exact"
        assert result.metrics["relaxation"] == 1
        assert result.metrics["delta"] is None
        assert "buckets_served" not in result.metrics


class TestRelaxedModes:
    @pytest.mark.parametrize("app", RELAXABLE)
    def test_multiqueue_mode_validates(self, app):
        spec = APPS[app]
        state, _, result = _run(
            run_relaxed, spec, 4, RunConfig(relaxation=4)
        )
        spec.validate(state)
        assert result.metrics["relaxed_mode"] == "multiqueue"
        assert result.metrics["relaxation"] == 4

    @pytest.mark.parametrize("app", RELAXABLE)
    @pytest.mark.parametrize("engine", ["dict", "flat"])
    def test_delta_mode_validates(self, app, engine):
        spec = APPS[app]
        state, _, result = _run(
            run_relaxed, spec, 4, RunConfig(delta=4, engine=engine)
        )
        spec.validate(state)
        assert result.metrics["relaxed_mode"] == "delta"
        assert result.metrics["buckets_served"] >= 1
        assert result.metrics["lazy_skips"] >= 0

    def test_relaxed_final_state_matches_exact(self):
        spec = APPS["sssp"]
        snapshots = []
        for config in (
            RunConfig(),
            RunConfig(relaxation=4),
            RunConfig(delta=DEFAULT_DELTA),
        ):
            state, _, _ = _run(run_relaxed, spec, 4, config)
            snapshots.append(spec.snapshot(state))
        assert snapshots[0] == snapshots[1] == snapshots[2]

    def test_delta_beats_ikdg_on_sssp(self):
        spec = APPS["sssp"]
        _, exact_machine, _ = _run(run_ikdg, spec, 8, RunConfig())
        state, relaxed_machine, _ = _run(
            run_relaxed, spec, 8, RunConfig(delta=DEFAULT_DELTA)
        )
        spec.validate(state)
        assert (
            relaxed_machine.elapsed_cycles() < exact_machine.elapsed_cycles()
        )


class TestKnobGates:
    def test_relaxed_requires_relaxable_algorithm(self):
        spec = APPS["mst"]
        with pytest.raises(ValueError, match="relaxable"):
            _run(run_relaxed, spec, 2, RunConfig(relaxation=2))

    def test_delta_requires_level_of(self):
        spec = APPS["sssp"]
        state = spec.make_small()
        algorithm = dataclasses.replace(spec.algorithm(state), level_of=None)
        with pytest.raises(ValueError, match="level_of"):
            run_relaxed(algorithm, SimMachine(2), RunConfig(delta=4))

    def test_relaxation_and_delta_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            _run(
                run_relaxed, APPS["sssp"], 2,
                RunConfig(relaxation=2, delta=4),
            )

    def test_level_windows_rejected(self):
        with pytest.raises(ValueError, match="level_windows"):
            _run(run_relaxed, APPS["sssp"], 2, RunConfig(level_windows=True))

    def test_mp_backend_rejected(self):
        with pytest.raises(ValueError, match="mp"):
            _run(
                run_relaxed, APPS["sssp"], 2,
                RunConfig(backend="mp", workers=2),
            )

    @pytest.mark.parametrize("config", [
        RunConfig(relaxation=2),
        RunConfig(delta=4),
    ])
    def test_exact_executors_reject_relaxation_knobs(self, config):
        with pytest.raises(ValueError, match="relaxed"):
            _run(run_ikdg, APPS["sssp"], 2, config)
