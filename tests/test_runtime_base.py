"""Tests for shared executor machinery (LoopResult, MinTracker, inflation)."""

import pytest

from repro import SimMachine
from repro.core import Task
from repro.machine import Category, CostModel
from repro.runtime.base import LoopResult, MinTracker, inflate_execute


class TestMinTracker:
    def test_empty(self):
        tracker = MinTracker()
        assert tracker.min_task() is None
        assert tracker.min_priority() is None
        assert len(tracker) == 0

    def test_min_by_key(self):
        tracker = MinTracker()
        a, b = Task("a", 5, 0), Task("b", 2, 1)
        tracker.add(a)
        tracker.add(b)
        assert tracker.min_task() is b
        assert tracker.min_priority() == 2

    def test_lazy_removal(self):
        tracker = MinTracker()
        a, b = Task("a", 1, 0), Task("b", 2, 1)
        tracker.add(a)
        tracker.add(b)
        tracker.remove(a)
        assert tracker.min_task() is b
        assert len(tracker) == 1

    def test_remove_absent_is_noop(self):
        tracker = MinTracker()
        tracker.remove(Task("x", 0, 99))

    def test_tie_break_by_tid(self):
        tracker = MinTracker()
        first, second = Task("f", 3, 0), Task("s", 3, 1)
        tracker.add(second)
        tracker.add(first)
        assert tracker.min_task() is first


class TestInflateExecute:
    def test_no_inflation_on_one_thread(self):
        machine = SimMachine(1)
        assert inflate_execute(machine, 100.0, 1.0) == 100.0

    def test_no_inflation_for_compute_bound(self):
        machine = SimMachine(40)
        assert inflate_execute(machine, 100.0, 0.0) == 100.0

    def test_memory_bound_grows_with_threads(self):
        cm = CostModel(bandwidth_penalty_per_thread=0.025)
        at8 = inflate_execute(SimMachine(8, cm), 100.0, 1.0)
        at40 = inflate_execute(SimMachine(40, cm), 100.0, 1.0)
        assert 100.0 < at8 < at40

    def test_partial_fraction_interpolates(self):
        cm = CostModel(bandwidth_penalty_per_thread=0.1)
        machine = SimMachine(11, cm)  # stretch = 2.0 for the memory share
        assert inflate_execute(machine, 100.0, 0.5) == pytest.approx(150.0)


class TestLoopResult:
    def test_derived_fields(self):
        machine = SimMachine(2)
        machine.charge(0, Category.EXECUTE, 2.2e9)
        result = LoopResult("app", "exec", machine, executed=5)
        assert result.elapsed_cycles == 2.2e9
        assert result.elapsed_seconds == pytest.approx(1.0)
        assert result.breakdown()[Category.EXECUTE] == 2.2e9
        assert result.stats is machine.stats

    def test_metrics_default_empty(self):
        result = LoopResult("a", "e", SimMachine(1), executed=0)
        assert result.metrics == {}
