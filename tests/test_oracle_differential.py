"""Cross-executor equivalence tests driven by the serializability oracle.

Every bundled app runs under every oracle executor on seeded tiny inputs;
the oracle must report every exact executor serializable and equivalent to
the serial reference, and hold the relaxed variants (``relaxed-mq``,
``relaxed-delta``) to final-state equality plus a measured rank-error
report.  A deliberately corrupted schedule (two conflicting commits
swapped out of priority order) must be flagged.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro import SimMachine
from repro.apps import APPS
from repro.oracle import (
    ORACLE_EXECUTORS,
    TraceRecorder,
    check_trace,
    diff_executors,
    diff_traces,
    run_traced,
)
from repro.oracle.workloads import ORACLE_STATES, make_oracle_state
from repro.runtime import run_serial

from .helpers import ChainCounter

SEEDS = (0, 1, 2)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("app", sorted(ORACLE_STATES))
def test_all_executors_serializable_and_equivalent(app, seed):
    """The acceptance gate: every executor × app × seed passes the oracle."""
    report = diff_executors(app, seed=seed, threads=3)
    failed = [v for v in report.verdicts if v.status == "fail"]
    assert report.ok, [v.to_dict() for v in failed]
    # Every executor either ran or was ruled out by declared properties;
    # at minimum serial + four parallel executors must actually run.
    ran = [v for v in report.verdicts if v.status == "ok"]
    assert len(ran) >= 5
    for verdict in ran:
        assert verdict.snapshot_matches
        assert verdict.executed > 0
    for verdict in report.verdicts:
        if verdict.status == "skip":
            # Declared properties rule executors out: async RNA needs stable
            # sources/local tests; the relaxed variants need a relaxable
            # (label-correcting) algorithm, and relaxed-delta additionally a
            # declared bucket width.
            assert verdict.executor in (
                "kdg-rna-async", "relaxed-mq", "relaxed-delta",
            )
            assert verdict.reason


def test_oracle_covers_all_registered_apps():
    assert set(ORACLE_STATES) == set(APPS)


def test_executor_list_matches_module():
    assert ORACLE_EXECUTORS == (
        "serial", "kdg-rna", "kdg-rna-async", "ikdg",
        "level-by-level", "speculation",
        "relaxed", "relaxed-mq", "relaxed-delta",
    )


def test_unknown_app_and_executor_raise():
    with pytest.raises(ValueError):
        make_oracle_state("nonesuch", 0)
    with pytest.raises(ValueError):
        run_traced("avi", "nonesuch", make_oracle_state("avi", 0))


def _serial_chain_trace(cells=2, steps=4):
    """Record a serial ChainCounter run (same-cell tasks conflict)."""
    app = ChainCounter(cells=cells, steps=steps)
    algorithm = app.algorithm()
    recorder = TraceRecorder()
    run_serial(algorithm, SimMachine(1), recorder=recorder)
    assert app.sums == app.expected_sums()
    return recorder.trace("chain-counter", "serial", 1)


class TestCorruptedSchedule:
    """The oracle must flag an injected out-of-order commit."""

    def test_honest_serial_trace_is_clean(self):
        trace = _serial_chain_trace()
        report = check_trace(trace)
        assert report.ok, report.summary()
        assert report.checked_conflicts

    def test_swapped_conflicting_commits_flagged(self):
        trace = _serial_chain_trace()
        # Find two commits on the same cell (they conflict: both write it)
        # and swap their positions — a commit out of priority order.
        by_cell = {}
        pair = None
        for index, event in enumerate(trace.events):
            cell = event.rw_set[0]
            if cell in by_cell:
                pair = (by_cell[cell], index)
                break
            by_cell[cell] = index
        assert pair is not None
        i, j = pair
        events = list(trace.events)
        events[i], events[j] = events[j], events[i]
        # Renumber seq and round so only the *commit order* is corrupted.
        corrupted = dataclasses.replace(
            trace,
            events=[
                dataclasses.replace(e, seq=s, round=0)
                for s, e in enumerate(events)
            ],
        )
        report = check_trace(corrupted)
        assert not report.ok
        assert any(v.kind == "conflict-order" for v in report.violations)
        first = report.violations[0]
        # The excerpt names both witnessing commits, minimized to dicts.
        excerpt = first.excerpt()
        assert len(excerpt) == 2
        assert {"seq", "tid", "priority", "rw_set", "writes"} <= set(excerpt[0])

    def test_swapped_independent_commits_not_flagged(self):
        """Commits on different cells never conflict — swap is legal."""
        trace = _serial_chain_trace(cells=3, steps=3)
        events = list(trace.events)
        # The first tasks of cells 0 and 1 are adjacent and independent.
        assert events[0].rw_set != events[1].rw_set
        events[0], events[1] = events[1], events[0]
        reordered = dataclasses.replace(
            trace,
            events=[
                dataclasses.replace(e, seq=s, round=0)
                for s, e in enumerate(events)
            ],
        )
        assert check_trace(reordered).ok

    def test_dropped_commit_breaks_task_set(self):
        trace = _serial_chain_trace()
        truncated = dataclasses.replace(trace, events=trace.events[:-1])
        report = diff_traces(trace, truncated)
        assert any(v.kind == "task-set" for v in report.violations)

    def test_task_key_canonicalization(self):
        """A schedule-dependent tie-break stripped by ``task_key`` does not
        produce task-set noise (the DES event-id situation)."""
        trace = _serial_chain_trace()
        renumbered = dataclasses.replace(
            trace,
            events=[
                dataclasses.replace(e, priority=(e.priority, 1000 + e.seq))
                for e in trace.events
            ],
        )
        base = dataclasses.replace(
            trace,
            events=[
                dataclasses.replace(e, priority=(e.priority, 2000 + e.seq))
                for e in trace.events
            ],
        )
        noisy = diff_traces(base, renumbered)
        assert any(v.kind == "task-set" for v in noisy.violations)
        clean = diff_traces(base, renumbered, task_key=lambda p: p[0])
        assert clean.ok

    def test_compare_tasks_false_skips_multiset(self):
        trace = _serial_chain_trace()
        truncated = dataclasses.replace(trace, events=trace.events[:-1])
        report = diff_traces(trace, truncated, compare_tasks=False)
        assert report.ok
        assert not report.checked_conflicts


class TestTraceRecorder:
    def test_double_commit_rejected(self):
        trace = _serial_chain_trace()
        recorder = TraceRecorder()
        recorder.commit_raw(tid=0, priority=1, rw_set=(), write_set=frozenset())
        with pytest.raises(ValueError):
            recorder.commit_raw(tid=0, priority=1, rw_set=(), write_set=frozenset())
        assert trace.events  # recorded independently

    def test_push_from_uncommitted_parent_rejected(self):
        recorder = TraceRecorder()
        with pytest.raises(ValueError):
            recorder.push_tid(7, 8)

    def test_threads_attributed_to_real_threads(self):
        """Round-based executors patch in phase thread assignments; no
        committed event may be left on the UNASSIGNED sentinel."""
        for executor in ORACLE_EXECUTORS:
            state = make_oracle_state("avi", 0)
            try:
                _, trace = run_traced("avi", executor, state, threads=3)
            except ValueError:
                continue
            threads = 1 if executor == "serial" else 3
            for event in trace.events:
                assert 0 <= event.thread < threads, (executor, event)

    def test_commit_counts_match_trace(self):
        state = make_oracle_state("lu", 0)
        result, trace = run_traced("lu", "ikdg", state, threads=3)
        per_thread = result.machine.stats.commits_by_thread()
        assert sum(per_thread) == len(trace.events) == result.executed
        from collections import Counter

        by_thread = Counter(e.thread for e in trace.events)
        assert [by_thread.get(t, 0) for t in range(3)] == per_thread


class TestTraceExport:
    def test_json_schema_roundtrip(self):
        state = make_oracle_state("bfs", 0)
        _, trace = run_traced("bfs", "kdg-rna", state, threads=2)
        payload = json.loads(trace.to_json())
        assert payload["schema"] == "repro.oracle.trace/v1"
        assert payload["executor"] == "kdg-rna"
        assert payload["threads"] == 2
        assert payload["executed"] == len(trace.events)
        event = payload["events"][0]
        assert set(event) == {
            "seq", "tid", "priority", "round", "thread",
            "rw_set", "write_set", "pushed",
        }
        json.dumps(payload)  # fully JSON-serializable

    def test_report_to_dict_carries_first_divergence(self):
        trace = _serial_chain_trace()
        truncated = dataclasses.replace(trace, events=trace.events[:-1])
        report = diff_executors("avi", seed=0, threads=2,
                                executors=("serial", "ikdg"))
        as_dict = report.to_dict()
        assert as_dict["ok"] is True
        assert [v["executor"] for v in as_dict["verdicts"]] == ["serial", "ikdg"]
        # And a failing diff serializes its first divergence.
        violations = diff_traces(trace, truncated).violations
        assert violations and violations[0].kind == "task-set"


class TestCrossBackendMatrix:
    """Tentpole acceptance: the dict engine, the inline flat engine, and the
    flat engine with real worker processes (``backend="mp"``) are one
    executor three ways — traces, simulated makespans, round counts, cycle
    breakdowns, and final-state snapshots must be bit-identical across the
    full app × executor × seed matrix."""

    #: The executors that accept a backend (speculation raises, serial has
    #: no parallel phases, kdg-rna-async shares kdg-rna's entry point).
    BACKEND_EXECUTORS = ("kdg-rna", "ikdg", "level-by-level")

    @pytest.fixture(scope="class")
    def mp_backend(self):
        from repro.runtime.mp_backend import MPMarkBackend

        # threshold=0 dispatches every numeric pooled round to the workers;
        # one shared pool amortizes process startup across the matrix.
        with MPMarkBackend(workers=2, threshold=0) as backend:
            yield backend

    #: (executor, app) combinations whose flat runs pool their windows:
    #: the pooled mark path needs structure-based rw-sets, which every
    #: bundled app but MST declares.  These combinations must rank-encode
    #: (pool stays numeric) and really dispatch worker rounds under mp —
    #: passing the bit-identity matrix via the inline fallback would hide
    #: exactly the regression this PR fixes.
    POOLED_EXECUTORS = ("ikdg", "level-by-level")
    UNPOOLED_APPS = ("mst",)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("app", sorted(ORACLE_STATES))
    def test_backends_bit_identical(self, app, seed, mp_backend):
        spec = APPS[app]
        for executor in self.BACKEND_EXECUTORS:
            runs = {}
            mp_delta = 0
            for label, kwargs in (
                ("dict", {"engine": "dict"}),
                ("flat", {"engine": "flat"}),
                ("mp", {"engine": "flat", "backend": mp_backend}),
            ):
                state = make_oracle_state(app, seed)
                mp_before = mp_backend.mp_rounds
                try:
                    result, trace = run_traced(
                        app, executor, state, threads=3, **kwargs
                    )
                except ValueError:
                    runs[label] = None
                    continue
                if label == "mp":
                    mp_delta = mp_backend.mp_rounds - mp_before
                runs[label] = (result, trace, spec.snapshot(state))
            ref = runs["dict"]
            if ref is None:
                # Properties rule the executor out — identically everywhere.
                assert runs["flat"] is None and runs["mp"] is None
                continue
            r0, t0, s0 = ref
            pooled = (
                executor in self.POOLED_EXECUTORS
                and app not in self.UNPOOLED_APPS
            )
            for label in ("flat", "mp"):
                assert runs[label] is not None, (app, executor, label)
                r1, t1, s1 = runs[label]
                ctx = (app, executor, label, seed)
                assert r1.executed == r0.executed, ctx
                assert r1.rounds == r0.rounds, ctx
                assert r1.elapsed_cycles == r0.elapsed_cycles, ctx
                assert r1.breakdown() == r0.breakdown(), ctx
                assert t1.events == t0.events, ctx
                assert s1 == s0, ctx
                # Engagement, not just equivalence: pooled combinations
                # must rank-encode every app priority end-of-run ...
                assert r1.metrics.get("flat_pool_numeric") is (
                    True if pooled else None
                ), ctx
            # ... and their mp runs must have dispatched real worker
            # rounds (threshold=0: every pooled round goes to workers).
            if pooled:
                assert mp_delta > 0, (app, executor, seed)

    def test_speculation_refuses_mp(self):
        state = make_oracle_state("bfs", 0)
        with pytest.raises(ValueError, match="speculation.*backend"):
            run_traced("bfs", "speculation", state, threads=3, backend="mp")

    def test_serial_refuses_mp(self):
        state = make_oracle_state("bfs", 0)
        with pytest.raises(ValueError, match="serial.*backend"):
            run_traced("bfs", "serial", state, backend="mp")


class TestSanitizerSweep:
    """Satellite acceptance: the sanitizer is observation-only and the
    shipped apps are violation-free under every executor."""

    @pytest.mark.parametrize("app", sorted(ORACLE_STATES))
    def test_sanitized_sweep_is_clean_and_bit_identical(self, app):
        for executor in ORACLE_EXECUTORS:
            plain_state = make_oracle_state(app, 0)
            sanitized_state = make_oracle_state(app, 0)
            try:
                plain_result, plain_trace = run_traced(
                    app, executor, plain_state, threads=3
                )
            except ValueError:
                continue  # properties rule this executor out for this app
            # Zero violations in shipped apps: this call raising
            # RWSetViolation is a test failure.
            sanitized_result, sanitized_trace = run_traced(
                app, executor, sanitized_state, threads=3, sanitize=True
            )
            assert sanitized_result.executed == plain_result.executed
            assert sanitized_result.elapsed_cycles == plain_result.elapsed_cycles
            assert sanitized_trace.events == plain_trace.events
            spec = APPS[app]
            assert spec.snapshot(sanitized_state) == spec.snapshot(plain_state)
