"""Unit and property tests for CSR graphs and meshes."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.galois import CSRGraph, TriangularMesh


class TestCSRGraph:
    def test_from_edges_basic(self):
        g = CSRGraph.from_edges(3, [(0, 1), (0, 2), (1, 2)])
        assert g.num_nodes == 3
        assert g.num_edges == 3
        assert list(g.neighbors(0)) == [1, 2]
        assert g.out_degree(1) == 1

    def test_empty_graph(self):
        g = CSRGraph.from_edges(4, [])
        assert g.num_edges == 0
        assert list(g.neighbors(0)) == []

    def test_out_of_range_source_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, [(2, 0)])

    def test_out_of_range_target_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, [(0, 5)])

    def test_weights_follow_edges(self):
        g = CSRGraph.from_edges(3, [(1, 2), (0, 1)], weights=[9.0, 4.0])
        eid = next(iter(g.edge_range(0)))
        assert g.edge_weights[eid] == 4.0

    def test_undirected_doubles_edges(self):
        g = CSRGraph.from_undirected_edges(3, [(0, 1)], weights=[7.0])
        assert g.num_edges == 2
        assert list(g.neighbors(0)) == [1]
        assert list(g.neighbors(1)) == [0]
        assert all(w == 7.0 for w in g.edge_weights)

    def test_inconsistent_row_starts_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(2, np.array([0, 1]), np.array([0]))

    def test_edges_iterator_roundtrip(self):
        edges = [(0, 1), (1, 2), (2, 0)]
        g = CSRGraph.from_edges(3, edges)
        assert sorted(g.edges()) == sorted(edges)

    @given(
        st.integers(2, 12).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(st.tuples(st.integers(0, n - 1), st.integers(0, n - 1))),
            )
        )
    )
    def test_degree_sum_equals_edges(self, n_and_edges):
        n, edges = n_and_edges
        g = CSRGraph.from_edges(n, edges)
        assert sum(g.out_degree(v) for v in range(n)) == len(edges)

    @given(
        st.integers(2, 10).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(st.tuples(st.integers(0, n - 1), st.integers(0, n - 1))),
            )
        )
    )
    def test_neighbors_match_edge_list(self, n_and_edges):
        n, edges = n_and_edges
        g = CSRGraph.from_edges(n, edges)
        for v in range(n):
            expected = sorted(b for a, b in edges if a == v)
            assert sorted(g.neighbors(v).tolist()) == expected


class TestTriangularMesh:
    def test_structured_counts(self):
        mesh = TriangularMesh.structured(3, 2)
        assert mesh.num_vertices == 4 * 3
        assert mesh.num_elements == 2 * 3 * 2

    def test_invalid_grid_rejected(self):
        with pytest.raises(ValueError):
            TriangularMesh.structured(0, 3)

    def test_vertex_ids_in_range(self):
        mesh = TriangularMesh.structured(4, 4)
        assert mesh.triangles.max() < mesh.num_vertices

    def test_total_area_is_unit_square(self):
        mesh = TriangularMesh.structured(5, 7)
        total = sum(mesh.element_area(e) for e in range(mesh.num_elements))
        assert total == pytest.approx(1.0)

    def test_neighbors_symmetric(self):
        mesh = TriangularMesh.structured(4, 3)
        for e in range(mesh.num_elements):
            for n in mesh.element_neighbors(e):
                assert e in mesh.element_neighbors(n)

    def test_neighbors_share_vertex(self):
        mesh = TriangularMesh.structured(4, 3)
        for e in range(mesh.num_elements):
            mine = set(mesh.vertices_of(e))
            for n in mesh.element_neighbors(e):
                assert mine & set(mesh.vertices_of(n))

    def test_not_own_neighbor(self):
        mesh = TriangularMesh.structured(3, 3)
        for e in range(mesh.num_elements):
            assert e not in mesh.element_neighbors(e)

    def test_vertex_elements_inverse(self):
        mesh = TriangularMesh.structured(3, 3)
        for v in range(mesh.num_vertices):
            for e in mesh.vertex_elements[v]:
                assert v in mesh.vertices_of(e)

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            TriangularMesh(np.zeros((3, 3)), np.zeros((1, 3), dtype=int))
        with pytest.raises(ValueError):
            TriangularMesh(np.zeros((3, 2)), np.array([[0, 1, 5]]))
