"""Domain tests for DES: circuit arithmetic as the functional oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SimMachine
from repro.apps import des
from repro.inputs import kogge_stone_adder, tree_multiplier
from repro.runtime import run_serial


def drive(circuit, vectors):
    """Run the DES ordered loop over the given stimulus; return outputs."""
    state = des.DESState(circuit, vectors)
    run_serial(des.make_algorithm(state), SimMachine(1))
    state.validate()
    return state.output_values()


def bits_of(value, n, prefix):
    return {f"{prefix}{i}": (value >> i) & 1 for i in range(n)}


class TestCircuitGenerators:
    @pytest.mark.parametrize("bits", [1, 4, 8])
    def test_adder_functional_eval(self, bits):
        circuit = kogge_stone_adder(bits)
        a, b = 2**bits - 1, 1  # worst-case carry chain
        out = circuit.evaluate({**bits_of(a, bits, "a"), **bits_of(b, bits, "b")})
        total = sum(out[f"s{i}"] << i for i in range(bits + 1))
        assert total == a + b

    @pytest.mark.parametrize("bits", [1, 3, 6])
    def test_multiplier_functional_eval(self, bits):
        circuit = tree_multiplier(bits)
        a, b = (2**bits - 1), (2**bits - 2) or 1
        out = circuit.evaluate({**bits_of(a, bits, "a"), **bits_of(b, bits, "b")})
        product = sum(out[f"p{i}"] << i for i in range(2 * bits))
        assert product == a * b

    def test_circuit_is_acyclic(self):
        kogge_stone_adder(8)._topological_order()  # raises on a cycle

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=30, deadline=None)
    def test_adder_random_inputs(self, a, b):
        circuit = kogge_stone_adder(8)
        out = circuit.evaluate({**bits_of(a, 8, "a"), **bits_of(b, 8, "b")})
        assert sum(out[f"s{i}"] << i for i in range(9)) == a + b


class TestDESSimulation:
    def test_single_vector_adder(self):
        circuit = kogge_stone_adder(6)
        out = drive(circuit, [{**bits_of(37, 6, "a"), **bits_of(21, 6, "b")}])
        assert sum(out[f"s{i}"] << i for i in range(7)) == 58

    def test_vector_sequence_settles_to_last(self):
        circuit = kogge_stone_adder(5)
        vectors = [
            {**bits_of(3, 5, "a"), **bits_of(4, 5, "b")},
            {**bits_of(17, 5, "a"), **bits_of(9, 5, "b")},
        ]
        out = drive(circuit, vectors)
        assert sum(out[f"s{i}"] << i for i in range(6)) == 26

    def test_multiplier_simulation(self):
        circuit = tree_multiplier(4)
        out = drive(circuit, [{**bits_of(13, 4, "a"), **bits_of(11, 4, "b")}])
        assert sum(out[f"p{i}"] << i for i in range(8)) == 143

    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=10, deadline=None)
    def test_des_adder_random(self, a, b):
        circuit = kogge_stone_adder(4)
        out = drive(circuit, [{**bits_of(a, 4, "a"), **bits_of(b, 4, "b")}])
        assert sum(out[f"s{i}"] << i for i in range(5)) == a + b

    def test_event_times_strictly_increase_per_link(self):
        state = des.make_adder_state(4, vectors=3, seed=1)
        run_serial(des.make_algorithm(state), SimMachine(1))
        # After the run, every link's last arrival is finite and queues empty.
        for gate in range(state.circuit.num_gates):
            for q in state.pending[gate]:
                assert not q

    def test_flush_closes_channels(self):
        state = des.make_adder_state(4, vectors=2, seed=1)
        run_serial(des.make_algorithm(state), SimMachine(1))
        for gate_id in range(state.circuit.num_gates):
            assert all(state.flushed[gate_id]), f"gate {gate_id} not flushed"
            assert all(c == float("inf") for c in state.port_clock[gate_id])

    def test_safe_test_requires_all_ports_bounded(self):
        state = des.make_adder_state(4, vectors=2, seed=1)
        # Find a 2-input gate and craft its pending state.
        gate = next(
            g.gid for g in state.circuit.gates if len(g.fanin) == 2
        )
        event = state._arrive(5.0, gate, 0, des.simulation.VAL, 1)
        assert not state.is_safe_event(event)  # port 1 clock is 0 < 5
        state.port_clock[gate][1] = 10.0
        assert state.is_safe_event(event)

    def test_out_of_order_consumption_rejected(self):
        state = des.make_adder_state(4, vectors=2, seed=1)
        gate = state.circuit.inputs["a0"]
        first = state.pending[gate][0][0]
        second = state.pending[gate][0][-1]
        if first is not second:
            with pytest.raises(RuntimeError, match="FIFO"):
                state.process_event(second)

    def test_chandy_misra_emits_nulls(self):
        state = des.make_multiplier_state(4, vectors=4, seed=2)
        result = des.run_other(state, SimMachine(2))
        state.validate()
        assert result.metrics["null_events"] > 0

    def test_manual_no_nulls(self):
        state = des.make_multiplier_state(4, vectors=4, seed=2)
        result = des.run_manual(state, SimMachine(2))
        state.validate()
        assert result.metrics["null_events"] == 0

    def test_properties_select_async(self):
        assert des.DES_PROPERTIES.supports_asynchronous
        assert des.DES_PROPERTIES.local_safe_source_test
        assert not des.DES_PROPERTIES.stable_source
