"""Domain tests for the AVI application."""

import numpy as np
import pytest

from repro import SimMachine
from repro.apps import avi
from repro.runtime import run_serial


@pytest.fixture()
def small_state():
    return avi.make_state(5, 5, end_time=0.3, seed=3)


class TestAVIState:
    def test_heterogeneous_steps(self, small_state):
        # Steps must differ (this is what starves level-by-level).
        assert len(np.unique(small_state.step)) > small_state.step.size // 2

    def test_initial_items_cover_all_elements(self, small_state):
        items = small_state.initial_items()
        elems = {e for e, _ in items}
        assert elems == set(range(small_state.mesh.num_elements))

    def test_element_update_touches_only_its_vertices(self, small_state):
        before_disp = small_state.disp.copy()
        before_vel = small_state.vel.copy()
        small_state.element_update(0)
        touched = set(small_state.mesh.vertices_of(0))
        for v in range(small_state.mesh.num_vertices):
            if v not in touched:
                assert (small_state.disp[v] == before_disp[v]).all()
                assert (small_state.vel[v] == before_vel[v]).all()

    def test_update_counts(self, small_state):
        small_state.element_update(3)
        small_state.element_update(3)
        assert small_state.updates_done[3] == 2


class TestAVIRun:
    def test_serial_run_advances_all_elements(self, small_state):
        result = run_serial(avi.make_algorithm(small_state), SimMachine(1))
        small_state.validate()
        assert result.executed == int(small_state.updates_done.sum())

    def test_element_times_strictly_ordered_per_element(self, small_state):
        # Every element's next_time must exceed end_time - one step.
        run_serial(avi.make_algorithm(small_state), SimMachine(1))
        slack = small_state.next_time - small_state.end_time
        assert (slack >= 0).all()
        assert (slack <= small_state.step + 1e-12).all()

    def test_displacements_bounded(self, small_state):
        run_serial(avi.make_algorithm(small_state), SimMachine(1))
        assert np.abs(small_state.disp).max() < 1.0  # no blow-up

    def test_priority_embeds_tie_break(self):
        state = avi.make_state(3, 3, end_time=0.2)
        algorithm = avi.make_algorithm(state)
        assert algorithm.priority((7, 0.5)) == (0.5, 7)

    def test_rw_set_is_vertices_plus_element(self):
        state = avi.make_state(3, 3, end_time=0.2)
        algorithm = avi.make_algorithm(state)
        task = algorithm.task_factory().make((0, 0.1))
        rw = algorithm.compute_rw_set(task)
        vertices = {("vertex", v) for v in state.mesh.vertices_of(0)}
        assert set(rw) == vertices | {("element", 0)}

    def test_manual_executes_same_update_count(self, small_state):
        reference = avi.make_state(5, 5, end_time=0.3, seed=3)
        run_serial(avi.make_algorithm(reference), SimMachine(1))
        result = avi.run_manual(small_state, SimMachine(4))
        assert result.executed == int(reference.updates_done.sum())

    def test_properties_choose_async_rna(self):
        assert avi.AVI_PROPERTIES.supports_asynchronous
        assert avi.AVI_PROPERTIES.monotonic
