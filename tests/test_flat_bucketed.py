"""Tests for the flat delta-bucket worklist (PriorityGraph scheduling).

The pop-order contract: with ``delta=1`` the lazy, ticketed
:class:`~repro.core.flat.bucketed.FlatBucketWorklist` is operation-for-
operation equivalent to the eager :class:`~repro.galois.bucketed.
BucketedWorklist` under arbitrary push/pop/decrease churn — the lazy
tombstone scheme is an implementation detail, never an observable one.
Delta-bucketing and fusion (``pop_bucket``) get their own checks.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flat import FlatBucketWorklist
from repro.galois import BucketedWorklist

LEVELS = st.integers(min_value=0, max_value=9)


class TestFlatBucketBasics:
    def test_delta_must_be_positive(self):
        with pytest.raises(ValueError, match="delta"):
            FlatBucketWorklist(level_of=lambda x: x, delta=0)

    def test_empty(self):
        wl = FlatBucketWorklist(level_of=lambda x: x)
        assert len(wl) == 0 and not wl
        with pytest.raises(IndexError):
            wl.pop()
        with pytest.raises(IndexError):
            wl.peek()
        with pytest.raises(IndexError):
            wl.current_bucket()

    def test_delta_groups_levels(self):
        wl = FlatBucketWorklist(level_of=lambda x: x[0], delta=4,
                                items=[(5, "b"), (2, "a"), (9, "c")])
        assert wl.bucket_of(5) == 1
        assert wl.current_bucket() == 0
        bucket, items = wl.pop_bucket()
        assert bucket == 0 and items == [(2, "a")]
        bucket, items = wl.pop_bucket()
        assert bucket == 1 and items == [(5, "b")]
        assert wl.pop() == (9, "c")
        assert not wl

    def test_fifo_within_bucket(self):
        wl = FlatBucketWorklist(level_of=lambda x: x[0],
                                items=[(1, "a"), (0, "z"), (1, "b")])
        assert wl.pop() == (0, "z")
        assert wl.pop() == (1, "a")
        assert wl.pop() == (1, "b")

    def test_push_batch_with_level_array(self):
        import numpy as np

        wl = FlatBucketWorklist(level_of=lambda x: 0, delta=2)
        wl.push_batch(["a", "b", "c"], levels=np.array([4, 1, 7]))
        assert wl.pop() == "b"
        assert wl.pop() == "a"
        assert wl.pop() == "c"

    def test_push_batch_length_mismatch(self):
        wl = FlatBucketWorklist(level_of=lambda x: 0)
        with pytest.raises(ValueError, match="push_batch"):
            wl.push_batch(["a", "b"], levels=[1])

    def test_decrease_requires_queued_item(self):
        wl = FlatBucketWorklist(level_of=lambda x: 1, items=["a"])
        with pytest.raises(KeyError):
            wl.decrease("ghost", 0)

    def test_decrease_is_lazy(self):
        levels = {"a": 5, "b": 5}
        wl = FlatBucketWorklist(level_of=levels.__getitem__,
                                items=["a", "b"])
        levels["a"] = 1
        wl.decrease("a", 1)
        assert len(wl) == 2          # stale entry is invisible to len
        assert wl.pop() == "a"       # served from the new bucket first
        # The stale level-5 entry for "a" sits ahead of "b" and is skipped
        # lazily when bucket 5 is served.
        assert wl.pop() == "b"
        assert wl.lazy_skips == 1
        assert not wl

    def test_pop_bucket_skips_stale_entries(self):
        levels = {"a": 4, "b": 4, "c": 4}
        wl = FlatBucketWorklist(level_of=levels.__getitem__,
                                items=["a", "b", "c"])
        levels["b"] = 0
        wl.decrease("b", 0)
        assert wl.pop() == "b"
        bucket, items = wl.pop_bucket()
        assert (bucket, items) == (4, ["a", "c"])

    def test_num_buckets_counts_live_only(self):
        levels = {"a": 0, "b": 7}
        wl = FlatBucketWorklist(level_of=levels.__getitem__, delta=2,
                                items=["a", "b"])
        assert wl.num_buckets() == 2
        levels["b"] = 1
        wl.decrease("b", 1)
        assert wl.num_buckets() == 1


# An op stream over unique string items with mutable levels.  ``decrease``
# picks a queued item and lowers its level — the only legal direction.
CHURN = st.lists(
    st.one_of(
        st.tuples(st.just("push"), LEVELS),
        st.tuples(st.just("pop")),
        st.tuples(st.just("decrease"), st.integers(0, 63), LEVELS),
    ),
    max_size=80,
)


class TestEquivalenceWithEagerWorklist:
    @given(ops=CHURN)
    @settings(max_examples=250, deadline=None)
    def test_delta1_matches_bucketed_worklist_under_churn(self, ops):
        levels: dict[str, int] = {}
        lazy = FlatBucketWorklist(level_of=levels.__getitem__)
        eager = BucketedWorklist(level_of=levels.__getitem__)
        queued: dict[str, int] = {}  # item -> its current (pushed) level
        next_id = 0
        for op in ops:
            if op[0] == "push":
                item = f"t{next_id}"
                next_id += 1
                levels[item] = op[1]
                lazy.push(item)
                eager.push(item)
                queued[item] = op[1]
            elif op[0] == "pop":
                if not queued:
                    with pytest.raises(IndexError):
                        lazy.pop()
                    continue
                got = lazy.pop()
                assert got == eager.pop()
                del queued[got]
            else:
                if not queued:
                    continue
                item = sorted(queued)[op[1] % len(queued)]
                old = queued[item]
                new = min(old, op[2])
                levels[item] = new
                lazy.decrease(item, new)
                eager.decrease(item, old)
                queued[item] = new
            assert len(lazy) == len(eager) == len(queued)
            if queued:
                assert lazy.peek() == eager.peek()
                assert lazy.current_bucket() == eager.current_level()
        # Drain whatever churn left behind: orders must still agree.
        while eager:
            assert lazy.pop() == eager.pop()
        assert not lazy

    @given(values=st.lists(LEVELS, max_size=40),
           delta=st.integers(min_value=1, max_value=4))
    @settings(max_examples=150, deadline=None)
    def test_pop_bucket_partitions_and_orders(self, values, delta):
        items = [(v, i) for i, v in enumerate(values)]
        wl = FlatBucketWorklist(level_of=lambda p: p[0], delta=delta,
                                items=items)
        served: list[tuple[int, int]] = []
        last_bucket = None
        while wl:
            bucket, batch = wl.pop_bucket()
            if last_bucket is not None:
                assert bucket > last_bucket
            last_bucket = bucket
            assert all(p[0] // delta == bucket for p in batch)
            served.extend(batch)
        assert sorted(served) == sorted(items)
