"""Unit tests for the cycle-cost model (repro.machine.costmodel)."""

import pytest

from repro.machine import DEFAULT_COST_MODEL, CostModel


class TestCostModel:
    def test_default_instance_shared(self):
        assert DEFAULT_COST_MODEL == CostModel()

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COST_MODEL.mark_cas = 1.0  # type: ignore[misc]

    def test_pq_cost_grows_with_size(self):
        cm = CostModel()
        assert cm.pq_cost(10) < cm.pq_cost(1000) < cm.pq_cost(100000)

    def test_pq_cost_positive_for_empty(self):
        assert CostModel().pq_cost(0) > 0

    def test_barrier_free_on_one_thread(self):
        assert CostModel().barrier_cost(1) == 0.0

    def test_barrier_grows_with_threads(self):
        cm = CostModel()
        assert 0 < cm.barrier_cost(2) < cm.barrier_cost(8) < cm.barrier_cost(40)

    def test_worklist_contention_grows_with_threads(self):
        cm = CostModel()
        assert cm.worklist_cost(1) < cm.worklist_cost(40)
        assert cm.worklist_cost(1) == cm.worklist_op

    def test_cas_cost_scales_with_contenders(self):
        cm = CostModel()
        assert cm.cas_cost(1) == cm.mark_cas
        assert cm.cas_cost(4) == 4 * cm.mark_cas
        assert cm.cas_cost(0) == cm.mark_cas  # clamps to at least one

    def test_work_cost_linear(self):
        cm = CostModel(cycles_per_work=2.0)
        assert cm.work_cost(10) == 20.0

    def test_cycles_to_seconds_uses_frequency(self):
        cm = CostModel(frequency_hz=2.2e9)
        assert cm.cycles_to_seconds(2.2e9) == pytest.approx(1.0)

    def test_custom_model_overrides(self):
        cm = CostModel(barrier_base=0.0, barrier_per_thread=1.0)
        assert cm.barrier_cost(10) == 10.0
