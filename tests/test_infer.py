"""Property-inference tests.

Four contracts, matching the acceptance criteria of the inference engine:

* the injected-defect corpus (``tests/fixtures/lint/unsound/``) is caught
  with **zero false negatives**, each finding anchored to its seeded
  ``file:line``;
* every shipped application's declared properties infer ``holds`` or a
  justified ``unknown`` — never a false ``violated`` — so the audit passes;
* ``RunConfig(properties="inferred")`` selects the same executor and
  produces bit-identical runs when declarations are sound, and refuses to
  run (``UnsoundDeclarationError``) when they are not;
* provable-but-undeclared flags surface as missed-optimization suggestions
  naming the §3.6 phase or subrule they would delete.
"""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.analysis import (
    HOLDS,
    RULE_MISSED,
    RULE_UNSOUND,
    UNKNOWN,
    VIOLATED,
    UnsoundDeclarationError,
    audit_app,
    infer_app,
    infer_path,
    infer_source,
    verified_properties,
)
from repro.analysis.effects import PROPERTY_FLAGS
from repro.apps import APPS
from repro.cli import main
from repro.machine import SimMachine
from repro.runtime.base import RunConfig

from .helpers import TINY_STATES

UNSOUND = Path(__file__).parent / "fixtures" / "lint" / "unsound"

#: fixture stem -> the property its seeded defect refutes.
UNSOUND_FLAGS = {
    "noadds": "no_new_tasks",
    "monotonic": "monotonic",
    "structure": "structure_based_rw_sets",
    "nonincreasing": "non_increasing_rw_sets",
    "stable": "stable_source",
    "local": "local_safe_source_test",
}


def anchor_line(path: Path) -> int:
    """1-based line of the fixture's ``# INFER-ANCHOR`` marker."""
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if "INFER-ANCHOR" in line:
            return lineno
    raise AssertionError(f"{path} has no INFER-ANCHOR marker")


# ----------------------------------------------------------------------
# Injected-defect corpus: zero false negatives, anchored output
# ----------------------------------------------------------------------
def test_corpus_covers_every_property():
    assert set(UNSOUND_FLAGS.values()) == set(PROPERTY_FLAGS)
    for stem in UNSOUND_FLAGS:
        assert (UNSOUND / f"{stem}.py").is_file()


@pytest.mark.parametrize("stem", sorted(UNSOUND_FLAGS))
def test_unsound_fixture_is_caught_at_the_anchor(stem):
    path = UNSOUND / f"{stem}.py"
    flag = UNSOUND_FLAGS[stem]
    (result,) = infer_path(path)
    assert result.verdicts[flag].status == VIOLATED
    errors = [f for f in result.findings if f.severity == "error"]
    assert len(errors) == 1, [str(f) for f in errors]
    finding = errors[0]
    assert finding.rule == RULE_UNSOUND
    assert finding.flag == flag
    assert finding.line == anchor_line(path)
    assert finding.file.endswith(f"{stem}.py")


# ----------------------------------------------------------------------
# Shipped apps: no false `violated` on any declared flag
# ----------------------------------------------------------------------
@pytest.mark.parametrize("app", sorted(APPS))
def test_shipped_app_declarations_are_never_refuted(app):
    results = infer_app(app)
    assert results, f"no OrderedAlgorithm found in {app}'s module"
    for result in results:
        for flag in PROPERTY_FLAGS:
            if result.unit.effective.get(flag):
                assert result.verdicts[flag].status in (HOLDS, UNKNOWN), (
                    flag,
                    result.verdicts[flag],
                )
        assert [f for f in result.findings if f.severity == "error"] == []


@pytest.mark.parametrize("app", sorted(APPS))
def test_verified_properties_equal_declared(app):
    spec = APPS[app]
    algorithm = spec.algorithm(spec.make_tiny())
    assert verified_properties(app) == algorithm.properties


# ----------------------------------------------------------------------
# Inferred-mode executor selection: bit-identical when sound
# ----------------------------------------------------------------------
@pytest.mark.parametrize("app", sorted(TINY_STATES))
def test_inferred_mode_is_bit_identical(app):
    spec = APPS[app]
    runs = []
    for mode in ("declared", "inferred"):
        state = TINY_STATES[app]()
        result = spec.run(
            state, "kdg-auto", SimMachine(2), config=RunConfig(properties=mode)
        )
        runs.append(
            (
                result.executor,
                result.executed,
                result.machine.elapsed_cycles(),
                spec.snapshot(state),
            )
        )
    assert runs[0] == runs[1]


def test_inferred_mode_refuses_unsound_declaration(monkeypatch):
    import repro.analysis.infer as infer_mod

    monkeypatch.setattr(
        infer_mod, "app_source_path", lambda app: UNSOUND / "stable.py"
    )
    spec = copy.copy(APPS["treesum"])
    spec._verified_name = None
    with pytest.raises(UnsoundDeclarationError) as excinfo:
        spec.verified_executor()
    assert excinfo.value.target == "treesum"
    assert "stable_source" in str(excinfo.value)
    # Declared mode remains unaffected by the failed audit.
    assert spec.auto_executor() in ("kdg-rna", "kdg-rna-async", "ikdg")


def test_audit_app_raises_with_anchored_findings(monkeypatch):
    import repro.analysis.infer as infer_mod

    path = UNSOUND / "monotonic.py"
    monkeypatch.setattr(infer_mod, "app_source_path", lambda app: path)
    with pytest.raises(UnsoundDeclarationError) as excinfo:
        audit_app("bogus")
    (finding,) = excinfo.value.findings
    assert finding.flag == "monotonic"
    assert finding.line == anchor_line(path)


# ----------------------------------------------------------------------
# Streaming adapters and session repair seeds
# ----------------------------------------------------------------------
STREAM_MODULES = (
    "apps/kcore/stream.py",
    "apps/bfs/stream.py",
    "apps/des/stream.py",
    "runtime/session.py",
)


@pytest.mark.parametrize("rel", STREAM_MODULES)
def test_streaming_modules_lint_and_infer_clean(rel):
    """The streaming adapters feed mutations and repair seeds back through
    their app's audited operators; they must neither define an unsound
    OrderedAlgorithm of their own nor trip any lint rule."""
    from repro.analysis import lint_file

    path = Path(__file__).parent.parent / "src" / "repro" / rel
    assert path.is_file(), path
    assert lint_file(path) == []
    for result in infer_path(path):
        assert [f for f in result.findings if f.severity == "error"] == []


# ----------------------------------------------------------------------
# Missed optimizations: provable-but-undeclared flags become suggestions
# ----------------------------------------------------------------------
NO_PUSH_SOURCE = '''
from repro.core.algorithm import OrderedAlgorithm
from repro.core.properties import AlgorithmProperties


def make_algorithm(state):
    def priority(item):
        return item

    def visit_rw_sets(item, ctx):
        ctx.write(("cell", item))

    def apply_update(item, ctx):
        ctx.access(("cell", item))
        state.done[item] = True
        ctx.work(1.0)

    return OrderedAlgorithm(
        name="no-push",
        initial_items=list(state.cells),
        priority=priority,
        visit_rw_sets=visit_rw_sets,
        apply_update=apply_update,
        properties=AlgorithmProperties(),
    )
'''


def test_missed_optimizations_are_suggested():
    (result,) = infer_source(NO_PUSH_SOURCE, file="no_push.py")
    suggestions = {f.flag: f for f in result.findings if f.severity == "suggestion"}
    # A push-free body proves No-Adds, monotonicity (vacuously), stability,
    # and structure-based rw-sets (disjoint from all writes) at once.
    for flag in (
        "no_new_tasks",
        "monotonic",
        "stable_source",
        "structure_based_rw_sets",
    ):
        assert result.verdicts[flag].status == HOLDS, result.verdicts[flag]
        assert suggestions[flag].rule == RULE_MISSED
        assert "§3.6" in suggestions[flag].message or "§3.4" in suggestions[flag].message
    assert [f for f in result.findings if f.severity == "error"] == []


def test_stable_source_suppresses_local_test_suggestion():
    # With stable_source effective, the safe-source test phase is deleted
    # wholesale — suggesting local_safe_source_test would be noise.
    source = NO_PUSH_SOURCE.replace(
        "AlgorithmProperties()", "AlgorithmProperties(stable_source=True)"
    )
    (result,) = infer_source(source, file="no_push.py")
    flags = {f.flag for f in result.findings}
    assert "local_safe_source_test" not in flags


# ----------------------------------------------------------------------
# CLI: repro infer
# ----------------------------------------------------------------------
def test_cli_infer_all_apps_clean(capsys):
    assert main(["infer", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "repro-lint/v2"
    assert payload["ok"] is True
    assert payload["errors"] == 0
    assert set(payload["targets"]) == set(APPS)


def test_cli_infer_fails_on_unsound_fixture(capsys):
    path = str(UNSOUND / "monotonic.py")
    assert main(["infer", "--path", path, "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["errors"] == 1


def test_cli_infer_fail_on_any_escalates_suggestions(tmp_path, capsys):
    target = tmp_path / "no_push.py"
    target.write_text(NO_PUSH_SOURCE)
    assert main(["infer", "--path", str(target)]) == 0
    capsys.readouterr()
    assert main(["infer", "--path", str(target), "--fail-on", "any"]) == 1
