"""Unit tests for ordered worklists."""

import pytest

from repro.galois import OrderedWorklist, PerThreadWorklists


class TestOrderedWorklist:
    def test_pops_in_priority_order(self):
        wl = OrderedWorklist(key=lambda x: x, items=[3, 1, 2])
        assert [wl.pop(), wl.pop(), wl.pop()] == [1, 2, 3]

    def test_counters(self):
        wl = OrderedWorklist(key=lambda x: x)
        wl.push(1)
        wl.push(2)
        wl.pop()
        assert wl.pushes == 2
        assert wl.pops == 1

    def test_pop_prefix(self):
        wl = OrderedWorklist(key=lambda x: x, items=[5, 1, 4, 2, 3])
        assert wl.pop_prefix(3) == [1, 2, 3]
        assert len(wl) == 2

    def test_pop_prefix_exhausts(self):
        wl = OrderedWorklist(key=lambda x: x, items=[2, 1])
        assert wl.pop_prefix(10) == [1, 2]
        assert not wl

    def test_pop_prefix_negative_rejected(self):
        with pytest.raises(ValueError):
            OrderedWorklist(key=lambda x: x).pop_prefix(-1)

    def test_pop_level_groups_equal_keys(self):
        wl = OrderedWorklist(key=lambda x: x[0], items=[(1, "a"), (2, "c"), (1, "b")])
        level, items = wl.pop_level()
        assert level == 1
        assert sorted(i[1] for i in items) == ["a", "b"]
        assert len(wl) == 1

    def test_pop_level_empty_raises(self):
        with pytest.raises(IndexError):
            OrderedWorklist(key=lambda x: x).pop_level()

    def test_peek(self):
        wl = OrderedWorklist(key=lambda x: -x, items=[1, 9, 5])
        assert wl.peek() == 9


class TestPerThreadWorklists:
    def test_owner_hashing(self):
        wls = PerThreadWorklists(2, key=lambda x: x)
        wls.push(10, owner=0)
        wls.push(20, owner=1)
        wls.push(30, owner=2)  # wraps to queue 0
        assert len(wls.queues[0]) == 2
        assert len(wls.queues[1]) == 1
        assert len(wls) == 3

    def test_global_min(self):
        wls = PerThreadWorklists(3, key=lambda x: x)
        wls.push(7, owner=0)
        wls.push(3, owner=1)
        wls.push(5, owner=2)
        assert wls.global_min() == 3

    def test_global_min_empty(self):
        assert PerThreadWorklists(2, key=lambda x: x).global_min() is None

    def test_requires_positive_threads(self):
        with pytest.raises(ValueError):
            PerThreadWorklists(0, key=lambda x: x)
