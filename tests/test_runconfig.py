"""RunConfig: one configuration object for every executor, shim bit-identity."""

import warnings

import pytest

from repro import SimMachine
from repro.runtime import EXECUTORS
from repro.runtime.base import RunConfig, coerce_config, reset_legacy_warning

from .helpers import ChainCounter

ORDERED_EXECUTORS = sorted(EXECUTORS)


def run_pair(name, **legacy):
    """Run one executor twice — legacy kwargs vs. equivalent RunConfig —
    and return both (sums, elapsed_cycles) observations."""
    observed = []
    for use_config in (False, True):
        counter = ChainCounter(cells=4, steps=6)
        machine = SimMachine(1 if name == "serial" else 3)
        if use_config:
            result = EXECUTORS[name](
                counter.algorithm(), machine, RunConfig(**legacy)
            )
        else:
            reset_legacy_warning()
            with pytest.warns(DeprecationWarning, match="deprecated"):
                result = EXECUTORS[name](counter.algorithm(), machine, **legacy)
        observed.append((counter.sums, machine.elapsed_cycles(), result))
    return observed


class TestShimEquivalence:
    @pytest.mark.parametrize("name", ORDERED_EXECUTORS)
    def test_legacy_kwargs_bit_identical_to_config(self, name):
        legacy, config = run_pair(name, checked=True)
        assert legacy[0] == config[0] == [21] * 4
        assert legacy[1] == config[1]

    def test_engine_kwarg_equivalent(self):
        legacy, config = run_pair("ikdg", engine="flat")
        assert legacy[0] == config[0]
        assert legacy[1] == config[1]

    def test_warns_once_per_process(self):
        reset_legacy_warning()
        with pytest.warns(DeprecationWarning):
            EXECUTORS["serial"](
                ChainCounter().algorithm(), SimMachine(1), checked=True
            )
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            EXECUTORS["serial"](
                ChainCounter().algorithm(), SimMachine(1), checked=True
            )

    def test_mixing_config_and_legacy_rejected(self):
        with pytest.raises(TypeError, match="not both"):
            EXECUTORS["ikdg"](
                ChainCounter().algorithm(), SimMachine(2),
                RunConfig(), checked=True,
            )

    @pytest.mark.parametrize("name,bad", [
        ("serial", "window_policy"),    # never in serial's signature
        ("level-by-level", "baseline"),
        ("ikdg", "definitely_a_typo"),
    ])
    def test_unknown_legacy_kwarg_rejected(self, name, bad):
        reset_legacy_warning()
        with pytest.raises(TypeError, match="unexpected keyword"):
            EXECUTORS[name](
                ChainCounter().algorithm(), SimMachine(2), **{bad: True}
            )


class TestValidation:
    def test_bad_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            RunConfig(engine="quantum").validate_for("ikdg")

    def test_serial_rejects_mp(self):
        with pytest.raises(ValueError, match="serial.*not supported"):
            RunConfig(backend="mp").validate_for("serial")

    def test_speculation_rejects_mp(self):
        with pytest.raises(ValueError, match="speculation.*not supported"):
            RunConfig(backend="mp").validate_for("speculation")

    def test_bad_baseline(self):
        with pytest.raises(ValueError, match="baseline"):
            RunConfig(baseline="quadratic").validate_for("serial")

    def test_coerce_defaults(self):
        cfg = coerce_config("ikdg", None, {})
        assert cfg == RunConfig()


class TestResolvedConfig:
    @pytest.mark.parametrize("name", ORDERED_EXECUTORS)
    def test_result_carries_config(self, name):
        cfg = RunConfig(sanitize=True)
        machine = SimMachine(1 if name == "serial" else 3)
        result = EXECUTORS[name](ChainCounter().algorithm(), machine, cfg)
        assert result.config is cfg
        described = result.config.describe()
        assert described["engine"] == "dict"
        assert described["backend"] == "inline"
        assert described["workers"] is None
        assert described["sanitize"] is True

    def test_describe_normalizes_backend_instance(self):
        class FakeBackend:
            workers = 5

        described = RunConfig(backend=FakeBackend(), workers=2).describe()
        assert described["backend"] == "mp"
        assert described["workers"] == 5

    def test_app_run_resolves_config(self):
        from repro.apps import APPS

        spec = APPS["bfs"]
        result = spec.run(spec.make_tiny(), "kdg-auto", SimMachine(3))
        assert result.config is not None
        assert result.config.level_windows  # bfs auto_options preserved

    def test_app_run_fills_defaults_into_passed_config(self):
        from repro.apps import APPS

        spec = APPS["bfs"]
        result = spec.run(
            spec.make_tiny(), "kdg-auto", SimMachine(3),
            config=RunConfig(engine="flat"),
        )
        assert result.config.engine == "flat"
        assert result.config.level_windows

    def test_app_run_rejects_config_plus_options(self):
        from repro.apps import APPS

        spec = APPS["bfs"]
        with pytest.raises(TypeError, match="not both"):
            spec.run(
                spec.make_tiny(), "kdg-auto", SimMachine(3),
                config=RunConfig(), checked=True,
            )
