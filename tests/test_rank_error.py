"""Tests for the rank-error replay oracle (``repro.oracle.rank_error``).

The replay is deterministic bookkeeping over a trace, so it can be checked
exactly on synthetic traces with hand-computed ranks, then cross-checked on
real executor traces: a serial run never inverts priority order, and the
relaxed modes report the disorder the oracle exists to measure.
"""

from __future__ import annotations

import pytest

from repro.oracle.rank_error import rank_error_report
from repro.oracle.trace import ExecutionTrace, TraceEvent


def _trace(events, executor="test", algorithm="synthetic"):
    return ExecutionTrace(
        algorithm=algorithm, executor=executor, threads=1, events=events
    )


def _event(seq, tid, priority, pushed=(), write_set=(), rw_set=None):
    write_set = frozenset(write_set)
    return TraceEvent(
        seq=seq,
        tid=tid,
        priority=priority,
        round=1,
        thread=0,
        rw_set=tuple(write_set) if rw_set is None else tuple(rw_set),
        write_set=write_set,
        pushed=list(pushed),
    )


class TestSyntheticTraces:
    def test_in_order_trace_has_zero_rank_error(self):
        report = rank_error_report(_trace([
            _event(0, 0, 1),
            _event(1, 1, 2),
            _event(2, 2, 3),
        ]))
        assert report.ordered
        assert (report.max_rank_error, report.mean_rank_error) == (0, 0.0)
        assert report.inversions == 0
        assert report.commits == 3

    def test_swapped_commits_are_ranked(self):
        # tid 2 (priority 3) jumps two strictly-earlier pending tasks.
        report = rank_error_report(_trace([
            _event(0, 2, 3),
            _event(1, 0, 1),
            _event(2, 1, 2),
        ]))
        assert not report.ordered
        assert report.inversions == 1
        assert report.max_rank_error == 2
        assert report.mean_rank_error == pytest.approx(2 / 3)

    def test_children_pend_from_parent_commit(self):
        # tid 1 enters the pending set only at its parent's (tid 0) commit.
        # After tid 0 commits, pending = {tid 1 (p2), tid 2 (p5)}; committing
        # tid 2 jumps exactly one strictly-earlier task — the fresh child.
        report = rank_error_report(_trace([
            _event(0, 0, 1, pushed=[1]),
            _event(1, 2, 5),
            _event(2, 1, 2),
        ]))
        assert report.inversions == 1
        assert report.max_rank_error == 1

    def test_empty_trace(self):
        report = rank_error_report(_trace([]))
        assert report.commits == 0
        assert report.mean_rank_error == 0.0
        assert report.ordered

    def test_corrupt_replay_raises(self):
        # tid 1 is a pushed child of tid 0 but commits *before* its parent:
        # it is not pending at its commit point.
        with pytest.raises(ValueError, match="not pending"):
            rank_error_report(_trace([
                _event(0, 1, 2),
                _event(1, 0, 1, pushed=[1]),
            ]))

    def test_re_relaxations_count_rewrites(self):
        report = rank_error_report(_trace([
            _event(0, 0, 1, write_set=[("node", 7)]),
            _event(1, 1, 2, write_set=[("node", 8)]),
            _event(2, 2, 3, write_set=[("node", 7), ("node", 9)]),
        ]))
        assert report.re_relaxations == 1  # ("node", 7) written twice

    def test_excess_commits_against_reference(self):
        events = [_event(i, i, i) for i in range(5)]
        reference = _trace(events[:3])
        report = rank_error_report(_trace(events), reference=reference)
        assert report.excess_commits == 2
        assert rank_error_report(_trace(events)).excess_commits is None

    def test_to_dict_rounds_and_gates_optional_fields(self):
        report = rank_error_report(_trace([
            _event(0, 1, 2),
            _event(1, 0, 1),
            _event(2, 2, 3),
        ]))
        out = report.to_dict()
        assert out["mean_rank_error"] == pytest.approx(1 / 3, abs=1e-4)
        assert "excess_commits" not in out


class TestExecutorTraces:
    def test_serial_trace_is_perfectly_ordered(self):
        from repro.apps import APPS
        from repro.machine import SimMachine
        from repro.oracle.trace import TraceRecorder
        from repro.runtime import run_serial
        from repro.runtime.base import RunConfig

        spec = APPS["sssp"]
        state = spec.make_tiny_fn()
        recorder = TraceRecorder()
        run_serial(
            spec.algorithm(state), SimMachine(1), RunConfig(recorder=recorder)
        )
        report = rank_error_report(recorder.trace("sssp", "serial", 1))
        assert report.ordered
        assert report.max_rank_error == 0

    def test_multiqueue_trace_reports_disorder(self):
        from repro.apps import APPS
        from repro.machine import SimMachine
        from repro.oracle.trace import TraceRecorder
        from repro.runtime import run_relaxed
        from repro.runtime.base import RunConfig

        spec = APPS["sssp"]
        state = spec.make_small()
        recorder = TraceRecorder()
        run_relaxed(
            spec.algorithm(state),
            SimMachine(4),
            RunConfig(relaxation=4, recorder=recorder),
        )
        spec.validate(state)
        report = rank_error_report(recorder.trace("sssp", "relaxed-mq", 4))
        # The whole point of the oracle: relaxation produces measurable,
        # bounded disorder while the final state stays exact.
        assert report.inversions > 0
        assert report.max_rank_error > 0
        assert report.commits > 0
