"""Domain tests for Kruskal MST and BFS, with networkx as the oracle."""

import networkx as nx
import pytest

from repro import SimMachine
from repro.apps import bfs, mst
from repro.runtime import run_serial


def nx_graph(state: mst.MSTState) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(range(state.num_nodes))
    for w, u, v, eid in state.items:
        # networkx keeps one edge per pair; keep the lighter (Kruskal would).
        if not g.has_edge(u, v) or g[u][v]["weight"] > w:
            g.add_edge(u, v, weight=w)
    return g


class TestMST:
    @pytest.mark.parametrize("maker", [
        lambda: mst.make_grid_state(8, 8, seed=1),
        lambda: mst.make_grid_state(10, 4, seed=2),
        lambda: mst.make_random_state(80, avg_degree=5.0, seed=3),
    ])
    def test_weight_matches_networkx(self, maker):
        state = maker()
        oracle_weight = sum(
            d["weight"]
            for _, _, d in nx.minimum_spanning_tree(nx_graph(state)).edges(data=True)
        )
        run_serial(mst.make_algorithm(state), SimMachine(1))
        assert state.mst_weight == pytest.approx(oracle_weight)

    def test_tree_edge_count(self):
        state = mst.make_grid_state(7, 7, seed=0)
        run_serial(mst.make_algorithm(state), SimMachine(1))
        assert len(state.mst_edges) == state.num_nodes - 1
        assert state.uf.num_components == 1

    def test_manual_matches_serial_weight(self):
        a = mst.make_grid_state(9, 9, seed=4)
        run_serial(mst.make_algorithm(a), SimMachine(1))
        b = mst.make_grid_state(9, 9, seed=4)
        mst.run_manual(b, SimMachine(4))
        assert b.mst_weight == a.mst_weight
        assert sorted(b.mst_edges) == sorted(a.mst_edges)

    def test_other_matches_serial_weight(self):
        a = mst.make_random_state(60, seed=5)
        run_serial(mst.make_algorithm(a), SimMachine(1))
        b = mst.make_random_state(60, seed=5)
        mst.run_other(b, SimMachine(4))
        assert b.mst_weight == a.mst_weight

    def test_rw_set_directional(self):
        state = mst.make_grid_state(4, 4, seed=0)
        algorithm = mst.make_algorithm(state)
        task = algorithm.task_factory().make(state.items[0])
        rw = algorithm.compute_rw_set(task)
        # Fresh singletons have equal rank: both roots written.
        assert len(rw) == 2
        assert task.write_set == frozenset(rw)

    def test_self_loop_declared_read_only(self):
        state = mst.make_grid_state(4, 4, seed=0)
        w, u, v, eid = state.items[0]
        state.contract(u, v)
        algorithm = mst.make_algorithm(state)
        task = algorithm.task_factory().make((w, u, v, eid))
        rw = algorithm.compute_rw_set(task)
        assert len(rw) == 1
        assert task.write_set == frozenset()

    def test_unequal_rank_writes_smaller_root(self):
        state = mst.make_grid_state(4, 4, seed=0)
        # Build a rank-2 component around node 0.
        state.contract(0, 1)
        state.contract(2, 3)
        state.contract(0, 2)
        big_root = state.uf.find(0)
        lone = 8
        algorithm = mst.make_algorithm(state)
        task = algorithm.task_factory().make((1.0, lone, 0, 999))
        algorithm.compute_rw_set(task)
        assert task.write_set == frozenset({("comp", lone)})
        assert ("comp", big_root) in task.rw_set

    def test_properties(self):
        assert mst.MST_PROPERTIES.stable_source
        assert mst.MST_PROPERTIES.no_new_tasks
        assert not mst.MST_PROPERTIES.non_increasing_rw_sets


class TestBFS:
    @pytest.mark.parametrize("maker", [
        lambda: bfs.make_grid_state(9, 9, seed=1),
        lambda: bfs.make_random_state(120, avg_degree=4.0, seed=2),
    ])
    def test_distances_match_networkx(self, maker):
        state = maker()
        g = nx.Graph()
        g.add_nodes_from(range(state.graph.num_nodes))
        g.add_edges_from(state.graph.edges())
        oracle = nx.single_source_shortest_path_length(g, state.source)
        run_serial(bfs.make_algorithm(state), SimMachine(1))
        for node in range(state.graph.num_nodes):
            expected = oracle.get(node, -1)
            assert state.dist[node] == expected, f"node {node}"

    def test_manual_matches_serial(self):
        a = bfs.make_grid_state(11, 7, seed=3)
        run_serial(bfs.make_algorithm(a), SimMachine(1))
        b = bfs.make_grid_state(11, 7, seed=3)
        bfs.run_manual(b, SimMachine(4))
        assert (a.dist == b.dist).all()

    def test_other_matches_serial(self):
        a = bfs.make_random_state(100, seed=4)
        run_serial(bfs.make_algorithm(a), SimMachine(1))
        b = bfs.make_random_state(100, seed=4)
        bfs.run_other(b, SimMachine(4))
        assert (a.dist == b.dist).all()

    def test_grid_has_many_levels_random_few(self):
        grid = bfs.make_grid_state(20, 20, seed=0)
        bfs.run_manual(grid, SimMachine(1))
        random_graph = bfs.make_random_state(400, seed=0)
        result = bfs.run_manual(random_graph, SimMachine(1))
        grid_levels = int(grid.dist.max()) + 1
        random_levels = int(random_graph.dist.max()) + 1
        assert grid_levels > 3 * random_levels
        assert result.metrics["num_levels"] == random_levels

    def test_safe_test_admits_only_min_level(self):
        state = bfs.make_grid_state(5, 5, seed=0)
        algorithm = bfs.make_algorithm(state)
        factory = algorithm.task_factory()
        from repro.core import SourceView

        deep = factory.make((1, 3))   # node 1 at level 3
        deeper = factory.make((2, 4))
        view = SourceView([deep, deeper], min_priority=(1, 0))
        assert not algorithm.is_safe(deep, view)  # global min level is 1
        view_at_level = SourceView([deep], min_priority=(3, 1))
        assert algorithm.is_safe(deep, view_at_level)

    def test_stale_update_is_noop(self):
        state = bfs.make_grid_state(4, 4, seed=0)
        run_serial(bfs.make_algorithm(state), SimMachine(1))
        dist_before = state.dist.copy()
        algorithm = bfs.make_algorithm(state)
        from repro.core.context import BodyContext

        algorithm.apply_update((0, 99), BodyContext())  # worse label
        assert (state.dist == dist_before).all()
