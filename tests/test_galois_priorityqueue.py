"""Unit and property tests for the priority queues."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.galois import BinaryHeap, PairingHeap


class TestBinaryHeap:
    def test_empty(self):
        heap = BinaryHeap(key=lambda x: x)
        assert len(heap) == 0
        assert not heap

    def test_pop_in_key_order(self):
        heap = BinaryHeap(key=lambda x: x, items=[3, 1, 2])
        assert [heap.pop() for _ in range(3)] == [1, 2, 3]

    def test_peek_does_not_remove(self):
        heap = BinaryHeap(key=lambda x: x, items=[5, 2])
        assert heap.peek() == 2
        assert len(heap) == 2

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            BinaryHeap(key=lambda x: x).pop()

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            BinaryHeap(key=lambda x: x).peek()

    def test_stable_ties_by_insertion_order(self):
        heap = BinaryHeap(key=lambda x: x[0])
        heap.push((1, "first"))
        heap.push((1, "second"))
        assert heap.pop() == (1, "first")
        assert heap.pop() == (1, "second")

    def test_lazy_removal_by_ticket(self):
        heap = BinaryHeap(key=lambda x: x)
        heap.push(1)
        ticket = heap.push(2)
        heap.push(3)
        heap.remove(ticket)
        assert len(heap) == 2
        assert list(heap.drain()) == [1, 3]

    def test_remove_head_then_peek(self):
        heap = BinaryHeap(key=lambda x: x)
        ticket = heap.push(1)
        heap.push(5)
        heap.remove(ticket)
        assert heap.peek() == 5

    def test_custom_key(self):
        heap = BinaryHeap(key=lambda s: -len(s), items=["a", "abc", "ab"])
        assert heap.pop() == "abc"

    @given(st.lists(st.integers()))
    def test_drains_sorted(self, values):
        heap = BinaryHeap(key=lambda x: x, items=values)
        assert list(heap.drain()) == sorted(values)

    @given(st.lists(st.integers(), min_size=1), st.data())
    def test_interleaved_push_pop_matches_sorted(self, values, data):
        heap = BinaryHeap(key=lambda x: x)
        reference = []
        for v in values:
            heap.push(v)
            reference.append(v)
            if data.draw(st.booleans()):
                assert heap.pop() == min(reference)
                reference.remove(min(reference))
        assert list(heap.drain()) == sorted(reference)


class TestPairingHeap:
    def test_empty(self):
        heap = PairingHeap(key=lambda x: x)
        assert len(heap) == 0
        with pytest.raises(IndexError):
            heap.pop()
        with pytest.raises(IndexError):
            heap.peek()

    def test_pop_in_key_order(self):
        heap = PairingHeap(key=lambda x: x, items=[4, 1, 3, 2])
        assert [heap.pop() for _ in range(4)] == [1, 2, 3, 4]

    def test_stable_ties(self):
        heap = PairingHeap(key=lambda x: x[0])
        heap.push((0, "a"))
        heap.push((0, "b"))
        assert heap.pop()[1] == "a"

    def test_meld(self):
        a = PairingHeap(key=lambda x: x, items=[1, 5])
        b = PairingHeap(key=lambda x: x, items=[2, 4])
        a.meld(b)
        assert len(a) == 4
        assert len(b) == 0
        assert [a.pop() for _ in range(4)] == [1, 2, 4, 5]

    def test_large_sequence_no_recursion_error(self):
        heap = PairingHeap(key=lambda x: x, items=list(range(5000, 0, -1)))
        assert heap.pop() == 1

    @given(st.lists(st.integers()))
    def test_drains_sorted(self, values):
        heap = PairingHeap(key=lambda x: x, items=values)
        out = [heap.pop() for _ in range(len(values))]
        assert out == sorted(values)

    @given(st.lists(st.integers()), st.lists(st.integers()))
    def test_meld_equals_union(self, left, right):
        a = PairingHeap(key=lambda x: x, items=left)
        b = PairingHeap(key=lambda x: x, items=right)
        a.meld(b)
        out = [a.pop() for _ in range(len(left) + len(right))]
        assert out == sorted(left + right)
