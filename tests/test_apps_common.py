"""Tests for the application harness (AppSpec) and the registry."""

import pytest

from repro import SimMachine
from repro.apps import APPS, PAPER_IMPLS
from repro.runtime import EXECUTORS

from .helpers import TINY_STATES


class TestRegistry:
    #: The paper's seven benchmarks; kcore is the post-paper streaming
    #: flagship and is exempt from the Figure-11 implementation matrix.
    PAPER_APPS = {"avi", "mst", "billiards", "lu", "des", "bfs", "treesum"}

    def test_all_apps_registered(self):
        assert set(APPS) == self.PAPER_APPS | {"kcore", "sssp", "astar"}

    def test_paper_impls(self):
        assert PAPER_IMPLS == ("serial", "kdg-auto", "kdg-manual", "other")

    def test_every_paper_app_has_manual(self):
        for name in self.PAPER_APPS:
            assert APPS[name].has_impl("kdg-manual"), name

    def test_other_absent_exactly_for_avi_and_billiards(self):
        missing = {
            name for name in self.PAPER_APPS
            if not APPS[name].has_impl("other")
        }
        assert missing == {"avi", "billiards"}  # the paper's "-" entries

    def test_streaming_adapters(self):
        streaming = {
            name for name, spec in APPS.items() if spec.stream_adapter is not None
        }
        assert streaming == {"kcore", "bfs", "des"}


class TestAutoExecutorSelection:
    """§4's executor choices, per application."""

    @pytest.mark.parametrize(
        "app,expected",
        [
            ("avi", "kdg-rna"),       # async RNA (stable + structure-based)
            ("lu", "kdg-rna"),        # same as AVI (§4.4)
            ("des", "kdg-rna"),       # async via local safe test
            ("treesum", "kdg-rna"),   # conventional task graph
            ("mst", "ikdg"),          # changing rw-sets
            ("billiards", "ikdg"),    # global safe test + stale events
            ("bfs", "ikdg"),          # level windowing
            ("kcore", "ikdg"),        # h-operator fixpoint, level windows
            ("sssp", "ikdg"),         # relaxed is opt-in, never auto
            ("astar", "ikdg"),        # same: exact ordering by default
        ],
    )
    def test_choice_matches_paper(self, app, expected):
        assert APPS[app].auto_executor() == expected


class TestRunDispatch:
    def test_unknown_impl_rejected(self):
        with pytest.raises(ValueError, match="unknown implementation"):
            APPS["avi"].run(TINY_STATES["avi"](), "warp-drive", SimMachine(1))

    def test_missing_other_rejected(self):
        with pytest.raises(ValueError, match="third-party"):
            APPS["avi"].run(TINY_STATES["avi"](), "other", SimMachine(2))

    def test_named_executor_dispatch(self):
        state = TINY_STATES["mst"]()
        result = APPS["mst"].run(state, "speculation", SimMachine(2))
        assert result.executor == "speculation"

    def test_serial_best_defaults_to_serial(self):
        state = TINY_STATES["mst"]()  # no run_serial_best override
        result = APPS["mst"].run(state, "serial-best", SimMachine(1))
        assert result.executor == "serial"

    def test_bfs_serial_best_is_two_level(self):
        state = TINY_STATES["bfs"]()
        result = APPS["bfs"].run(state, "serial-best", SimMachine(1))
        assert result.executor == "manual-two-level"

    def test_executors_registry_complete(self):
        assert set(EXECUTORS) == {
            "serial", "kdg-rna", "ikdg", "level-by-level", "speculation",
            "relaxed",
        }

    @pytest.mark.parametrize("app", sorted(TINY_STATES))
    def test_small_and_large_states_build(self, app):
        # Builders must work (sizes themselves are exercised in benchmarks).
        spec = APPS[app]
        assert spec.make_small() is not None

    def test_memory_fractions_declared(self):
        for name, spec in APPS.items():
            algorithm = spec.algorithm(TINY_STATES[name]())
            assert 0.0 < algorithm.memory_bound_fraction <= 1.0, name
