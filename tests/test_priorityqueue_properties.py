"""Property-based invariant tests for the runtime's priority structures.

Random operation interleavings against a sorted-list reference model:

* :class:`repro.galois.priorityqueue.BinaryHeap` — push/pop/peek plus
  ticketed lazy removal, including re-adding an item equal to a removed
  one (the lazy-deletion hazard: a stale heap entry must never shadow a
  live re-added entry);
* :class:`repro.galois.priorityqueue.PairingHeap` — push/pop/meld;
* :class:`repro.runtime.base.MinTracker` — add/remove with tid-keyed
  liveness, including remove-then-re-add of the *same* tid.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.task import Task
from repro.galois.priorityqueue import BinaryHeap, PairingHeap
from repro.runtime.base import MinTracker

# Small key ranges force ties, exercising the insertion-order tie-break.
KEYS = st.integers(min_value=0, max_value=7)

# An op is ("push", key) | ("pop",) | ("peek",) | ("remove", index) where
# index selects one of the still-live tickets (modulo their count).
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), KEYS),
        st.tuples(st.just("pop")),
        st.tuples(st.just("peek")),
        st.tuples(st.just("remove"), st.integers(min_value=0, max_value=63)),
    ),
    max_size=80,
)


class TestBinaryHeapModel:
    @given(ops=OPS)
    @settings(max_examples=200, deadline=None)
    def test_matches_sorted_list_model(self, ops):
        heap = BinaryHeap(lambda pair: pair[0])
        # Model: live entries as (key, insertion_seq, item); pops take min.
        model: list[tuple[int, int, tuple]] = []
        tickets: dict[int, tuple[int, int, tuple]] = {}
        seq = 0
        for op in ops:
            if op[0] == "push":
                item = (op[1], seq)
                ticket = heap.push(item)
                entry = (op[1], seq, item)
                model.append(entry)
                tickets[ticket] = entry
                seq += 1
            elif op[0] == "pop":
                if not model:
                    with pytest.raises(IndexError):
                        heap.pop()
                    continue
                expected = min(model)
                model.remove(expected)
                tickets = {
                    t: e for t, e in tickets.items() if e is not expected
                }
                assert heap.pop() == expected[2]
            elif op[0] == "peek":
                if not model:
                    with pytest.raises(IndexError):
                        heap.peek()
                    continue
                assert heap.peek() == min(model)[2]
            else:  # remove a live ticket
                if not tickets:
                    continue
                ticket = sorted(tickets)[op[1] % len(tickets)]
                entry = tickets.pop(ticket)
                model.remove(entry)
                heap.remove(ticket)
            assert len(heap) == len(model)
            assert bool(heap) == bool(model)
        assert list(heap.drain()) == [e[2] for e in sorted(model)]

    def test_removed_entry_does_not_shadow_equal_readd(self):
        """Lazy deletion: remove an entry, re-add an equal-keyed item — the
        stale tombstone must not swallow the new entry."""
        heap = BinaryHeap(lambda pair: pair[0])
        ticket = heap.push((1, "old"))
        heap.push((2, "later"))
        heap.remove(ticket)
        heap.push((1, "new"))
        assert len(heap) == 2
        assert heap.peek() == (1, "new")
        assert list(heap.drain()) == [(1, "new"), (2, "later")]

    def test_remove_after_equal_push_keeps_the_other(self):
        heap = BinaryHeap(lambda pair: pair[0])
        first = heap.push((5, "a"))
        heap.push((5, "b"))
        heap.remove(first)
        assert heap.pop() == (5, "b")
        assert not heap


class TestPairingHeapModel:
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("push"), KEYS),
                st.tuples(st.just("pop")),
                st.tuples(st.just("peek")),
            ),
            max_size=80,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_sorted_list_model(self, ops):
        heap = PairingHeap(lambda pair: pair[0])
        model: list[tuple[int, int, tuple]] = []
        seq = 0
        for op in ops:
            if op[0] == "push":
                item = (op[1], seq)
                heap.push(item)
                model.append((op[1], seq, item))
                seq += 1
            elif op[0] == "pop":
                if not model:
                    with pytest.raises(IndexError):
                        heap.pop()
                    continue
                expected = min(model)
                model.remove(expected)
                assert heap.pop() == expected[2]
            else:
                if not model:
                    with pytest.raises(IndexError):
                        heap.peek()
                    continue
                assert heap.peek() == min(model)[2]
            assert len(heap) == len(model)

    @given(
        left=st.lists(KEYS, max_size=20),
        right=st.lists(KEYS, max_size=20),
    )
    @settings(max_examples=200, deadline=None)
    def test_meld_drains_in_global_order(self, left, right):
        a = PairingHeap(lambda pair: pair[0])
        b = PairingHeap(lambda pair: pair[0])
        seq = 0
        model = []
        for key in left:
            a.push((key, seq)); model.append((key, seq)); seq += 1
        for key in right:
            b.push((key, seq)); model.append((key, seq)); seq += 1
        a.meld(b)
        assert len(b) == 0 and not b
        assert len(a) == len(model)
        drained = [a.pop() for _ in range(len(a))]
        assert drained == sorted(model)


def _task(tid: int, priority: int) -> Task:
    return Task(item=("t", tid), priority=priority, tid=tid)


class TestMinTrackerModel:
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("add"), KEYS),
                st.tuples(st.just("remove"), st.integers(0, 63)),
                st.tuples(st.just("readd"), st.integers(0, 63)),
            ),
            max_size=80,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_live_set_model(self, ops):
        tracker = MinTracker()
        live: dict[int, Task] = {}
        removed: list[Task] = []
        next_tid = 0
        for op in ops:
            if op[0] == "add":
                task = _task(next_tid, op[1])
                next_tid += 1
                tracker.add(task)
                live[task.tid] = task
            elif op[0] == "remove":
                if not live:
                    continue
                tid = sorted(live)[op[1] % len(live)]
                task = live.pop(tid)
                tracker.remove(task)
                removed.append(task)
            else:  # re-add a previously removed tid (lazy-deletion hazard)
                if not removed:
                    continue
                task = removed[op[1] % len(removed)]
                if task.tid in live:
                    continue
                tracker.add(task)
                live[task.tid] = task
            assert len(tracker) == len(live)
            if live:
                expected = min(live.values(), key=Task.key)
                assert tracker.min_task() is expected
                assert tracker.min_priority() == expected.priority
            else:
                assert tracker.min_task() is None
                assert tracker.min_priority() is None

    def test_readd_of_removed_tid_is_live_again(self):
        tracker = MinTracker()
        early, late = _task(0, 1), _task(1, 5)
        tracker.add(early)
        tracker.add(late)
        tracker.remove(early)
        assert tracker.min_task() is late
        tracker.add(early)  # the stale heap entry must serve the re-add
        assert tracker.min_task() is early
        assert len(tracker) == 2

    def test_remove_is_idempotent(self):
        tracker = MinTracker()
        task = _task(0, 3)
        tracker.add(task)
        tracker.remove(task)
        tracker.remove(task)
        assert len(tracker) == 0
        assert tracker.min_task() is None
