"""Unit and property tests for union-find."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.galois import UnionFind


class TestUnionFind:
    def test_initial_singletons(self):
        uf = UnionFind(5)
        assert uf.num_components == 5
        assert [uf.find(i) for i in range(5)] == list(range(5))

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_union_merges(self):
        uf = UnionFind(4)
        assert uf.union(0, 1) is True
        assert uf.connected(0, 1)
        assert uf.num_components == 3

    def test_union_idempotent(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        assert uf.union(1, 0) is False
        assert uf.num_components == 3

    def test_transitive_connectivity(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)
        assert not uf.connected(0, 3)

    def test_find_no_compress_is_pure(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(2, 3)
        before = list(uf.parent)
        rep = uf.find_no_compress(0)
        assert uf.parent == before, "find_no_compress mutated the forest"
        assert rep == uf.find(0)

    def test_find_compresses(self):
        uf = UnionFind(8)
        for i in range(7):
            uf.union(i, i + 1)
        uf.find(0)
        # After compression the path from 0 is short.
        assert uf.parent[0] == uf.find_no_compress(0) or uf.parent[uf.parent[0]] == uf.find_no_compress(0)

    def test_snapshot_canonical(self):
        uf = UnionFind(4)
        uf.union(0, 3)
        snap = uf.snapshot()
        assert snap[0] == snap[3]
        assert snap[1] != snap[2]

    def test_union_by_rank_direction(self):
        uf = UnionFind(5)
        uf.union(0, 1)  # rank(r01) = 1
        uf.union(2, 3)  # rank(r23) = 1
        uf.union(0, 2)  # equal ranks -> surviving root rank bumps to 2
        root = uf.find(0)
        assert uf.rank[root] == 2

    @given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19))))
    def test_matches_naive_partition(self, unions):
        uf = UnionFind(20)
        naive = {i: {i} for i in range(20)}
        for a, b in unions:
            uf.union(a, b)
            sa = next(s for s in naive.values() if a in s)
            sb = next(s for s in naive.values() if b in s)
            if sa is not sb:
                sa |= sb
                for member in sb:
                    naive[member] = sa
        for i in range(20):
            for j in range(20):
                assert uf.connected(i, j) == (j in naive[i])

    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15))))
    def test_component_count_invariant(self, unions):
        uf = UnionFind(16)
        for a, b in unions:
            uf.union(a, b)
        assert uf.num_components == len(set(uf.snapshot()))
