"""Tests for the bounded-relaxation MultiQueue scheduler.

The load-bearing properties: ``relaxation=1`` is bit-identical to the
exact shared worklist (the relaxed executor's drop-in guarantee), pops are
deterministic for a fixed seed (the oracle and sim_cycles gates), and the
structural relaxation invariants hold — ``c=2`` pops are exact key minima
(best-of-two over two heaps samples both), and every pop is the minimum of
the heap that served it, so disorder only ever comes from *which* heap was
sampled, never from within one.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.galois import MultiQueue, OrderedWorklist

# Small key range forces ties; (key, seq) items keep the total order unique.
KEYS = st.integers(min_value=0, max_value=7)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), KEYS),
        st.tuples(st.just("pop")),
        st.tuples(st.just("peek")),
    ),
    max_size=80,
)


class TestMultiQueueBasics:
    def test_relaxation_must_be_positive(self):
        with pytest.raises(ValueError, match="relaxation"):
            MultiQueue(key=lambda x: x, relaxation=0)

    def test_empty_pop_and_peek_raise(self):
        mq = MultiQueue(key=lambda x: x)
        assert len(mq) == 0 and not mq
        with pytest.raises(IndexError):
            mq.pop()
        with pytest.raises(IndexError):
            mq.peek()

    def test_counters(self):
        mq = MultiQueue(key=lambda x: x, items=[3, 1, 2], relaxation=2)
        assert mq.pushes == 3
        mq.pop()
        assert mq.pops == 1
        assert len(mq) == 2

    def test_peek_is_exact_across_queues(self):
        # Round-robin spreads the items over both heaps; peek must scan.
        mq = MultiQueue(key=lambda x: x, relaxation=2)
        for value in (5, 1, 4, 0):
            mq.push(value)
        assert mq.peek() == 0

    def test_charging_hooks(self):
        mq = MultiQueue(key=lambda x: x, relaxation=2)
        assert mq.target_queue_len() == 0
        mq.push(1)          # queue 0
        assert mq.target_queue_len() == 0  # next push lands in queue 1
        mq.push(2)
        assert mq.target_queue_len() == 1
        mq.pop()
        assert mq.last_queue_len() == 1

    def test_same_seed_same_schedule(self):
        def drain(seed):
            mq = MultiQueue(key=lambda x: x[0], relaxation=4, seed=seed)
            for i in range(40):
                mq.push(((i * 13) % 11, i))
            return [mq.pop() for _ in range(len(mq))]

        assert drain(7) == drain(7)

    def test_pop_drains_all_items(self):
        mq = MultiQueue(key=lambda x: x, items=list(range(20)), relaxation=3)
        out = sorted(mq.pop() for _ in range(20))
        assert out == list(range(20))
        assert not mq


class TestExactDegeneration:
    """``relaxation=1``: one heap, no sampling — the exact shared worklist."""

    @given(ops=OPS)
    @settings(max_examples=200, deadline=None)
    def test_c1_matches_ordered_worklist(self, ops):
        mq = MultiQueue(key=lambda pair: pair[0], relaxation=1)
        wl = OrderedWorklist(key=lambda pair: pair[0])
        seq = 0
        for op in ops:
            if op[0] == "push":
                item = (op[1], seq)
                seq += 1
                mq.push(item)
                wl.push(item)
            elif op[0] == "pop":
                if not wl:
                    with pytest.raises(IndexError):
                        mq.pop()
                    continue
                assert mq.pop() == wl.pop()
            else:
                if not wl:
                    with pytest.raises(IndexError):
                        mq.peek()
                    continue
                assert mq.peek() == wl.peek()
            assert len(mq) == len(wl)
            assert bool(mq) == bool(wl)

    @given(values=st.lists(KEYS, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_c1_construction_matches_incremental(self, values):
        items = [(v, i) for i, v in enumerate(values)]
        built = MultiQueue(key=lambda p: p[0], items=items)
        fed = MultiQueue(key=lambda p: p[0])
        for item in items:
            fed.push(item)
        assert [built.pop() for _ in range(len(built))] == [
            fed.pop() for _ in range(len(fed))
        ]


class TestRelaxationInvariants:
    """The structure the (expected-O(c)) rank-error bound rests on."""

    PUSH_POP = st.lists(
        st.one_of(
            st.tuples(st.just("push"), KEYS),
            st.tuples(st.just("pop")),
        ),
        max_size=120,
    )

    @given(ops=PUSH_POP, seed=st.integers(min_value=1, max_value=2**32))
    @settings(max_examples=200, deadline=None)
    def test_c2_pops_are_exact_key_minima(self, ops, seed):
        """Best-of-two over two heaps samples *both* heaps: every pop's key
        is the global pending minimum (only equal-key order can differ from
        the exact worklist)."""
        mq = MultiQueue(key=lambda pair: pair[0], relaxation=2, seed=seed)
        pending: list[tuple[int, int]] = []
        next_seq = 0
        for op in ops:
            if op[0] == "push":
                item = (op[1], next_seq)
                next_seq += 1
                mq.push(item)
                pending.append(item)
            else:
                if not pending:
                    continue
                item = mq.pop()
                assert item[0] == min(p[0] for p in pending), (item, pending)
                pending.remove(item)
        assert len(mq) == len(pending)

    @given(
        ops=PUSH_POP,
        relaxation=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=1, max_value=2**32),
    )
    @settings(max_examples=200, deadline=None)
    def test_pop_is_minimum_of_serving_heap(self, ops, relaxation, seed):
        """Disorder comes only from heap *selection*: after a pop, the
        serving heap's new head is never earlier than the popped item, and
        ``last_queue_len`` reports that heap's pre-pop length (the relaxed
        executor's scheduling charge)."""
        mq = MultiQueue(
            key=lambda pair: pair[0], relaxation=relaxation, seed=seed
        )
        next_seq = 0
        live = 0
        for op in ops:
            if op[0] == "push":
                mq.push((op[1], next_seq))
                next_seq += 1
                live += 1
            else:
                if not live:
                    continue
                before = [len(q) for q in mq._queues]
                item = mq.pop()
                live -= 1
                after = [len(q) for q in mq._queues]
                (served,) = [
                    i for i in range(relaxation) if after[i] != before[i]
                ]
                assert mq.last_queue_len() == before[served]
                if mq._queues[served]:
                    head = mq._queues[served].peek()
                    assert mq.key(head) >= mq.key(item)
