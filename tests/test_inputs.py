"""Tests for the workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.galois import UnionFind
from repro.inputs import (
    billiard_table,
    grid2d,
    kogge_stone_adder,
    plummer_bodies,
    random_graph,
    sparse_blocked_matrix,
    symbolic_fill,
    tree_multiplier,
)


class TestGraphGenerators:
    def test_grid_edge_count(self):
        _, edges, weights = grid2d(5, 4)
        # 4*(5-1) horizontal per row... (nx-1)*ny + nx*(ny-1)
        assert len(edges) == 4 * 4 + 5 * 3
        assert len(weights) == len(edges)

    def test_grid_weights_integer_valued(self):
        _, _, weights = grid2d(6, 6, max_weight=50, seed=1)
        assert np.all(weights == np.round(weights))
        assert weights.min() >= 1 and weights.max() <= 50

    def test_grid_connected(self):
        _, edges, _ = grid2d(7, 5)
        uf = UnionFind(35)
        for u, v in edges:
            uf.union(u, v)
        assert uf.num_components == 1

    def test_random_graph_connected(self):
        _, edges, _ = random_graph(200, avg_degree=3.0, seed=2)
        uf = UnionFind(200)
        for u, v in edges:
            uf.union(u, v)
        assert uf.num_components == 1

    def test_random_graph_no_duplicates_or_self_loops(self):
        _, edges, _ = random_graph(150, avg_degree=5.0, seed=3)
        assert len(set(edges)) == len(edges)
        assert all(u != v for u, v in edges)

    def test_random_graph_edge_count(self):
        _, edges, _ = random_graph(400, avg_degree=4.0, seed=0)
        assert len(edges) == 800

    def test_determinism(self):
        a = grid2d(6, 6, seed=9)[2]
        b = grid2d(6, 6, seed=9)[2]
        assert (a == b).all()


class TestBodies:
    def test_plummer_unit_mass(self):
        _, masses = plummer_bodies(1000, seed=1)
        assert masses.sum() == pytest.approx(1.0)

    def test_plummer_centrally_concentrated(self):
        positions, _ = plummer_bodies(3000, seed=2)
        radii = np.sqrt((positions**2).sum(axis=1))
        assert np.median(radii) < radii.max() / 3

    def test_plummer_3d(self):
        positions, _ = plummer_bodies(100, seed=0, dims=3)
        assert positions.shape == (100, 3)

    def test_plummer_bad_dims(self):
        with pytest.raises(ValueError):
            plummer_bodies(10, dims=4)

    def test_billiard_table_no_overlap(self):
        pos, _ = billiard_table(40, 30.0, radius=0.5, seed=4)
        for a in range(40):
            for b in range(a + 1, 40):
                d = pos[b] - pos[a]
                assert float(d @ d) > 1.0**2  # > (2r)^2

    def test_billiard_table_in_bounds(self):
        pos, _ = billiard_table(30, 25.0, radius=0.5, seed=5)
        assert (pos > 0.5).all() and (pos < 24.5).all()

    def test_billiard_table_too_small_rejected(self):
        with pytest.raises(ValueError):
            billiard_table(100, 5.0)


class TestMatrices:
    def test_band_present(self):
        mat = sparse_blocked_matrix(8, 3, bandwidth=1, extra_density=0.0, seed=0)
        for i in range(8):
            assert mat[i, i] is not None
            if i + 1 < 8:
                assert mat[i, i + 1] is not None

    def test_diagonal_dominance(self):
        mat = sparse_blocked_matrix(6, 4, seed=1)
        dense = mat.to_dense()
        for r in range(dense.shape[0]):
            assert abs(dense[r, r]) > np.abs(np.delete(dense[r], r)).sum() * 0.5

    def test_to_dense_roundtrip(self):
        mat = sparse_blocked_matrix(5, 3, seed=2)
        dense = mat.to_dense()
        for i, j in mat.nonzero_blocks():
            block = dense[i * 3 : (i + 1) * 3, j * 3 : (j + 1) * 3]
            assert (block == mat[i, j]).all()

    def test_copy_independent(self):
        mat = sparse_blocked_matrix(4, 2, seed=3)
        dup = mat.copy()
        dup[0, 0][0, 0] = 999.0
        assert mat[0, 0][0, 0] != 999.0

    def test_symbolic_fill_closure(self):
        """After fill, no bmod ever targets a missing block."""
        mat = sparse_blocked_matrix(9, 2, bandwidth=1, extra_density=0.3, seed=4)
        symbolic_fill(mat)
        n = mat.num_blocks
        for k in range(n):
            for i in range(k + 1, n):
                if mat[i, k] is None:
                    continue
                for j in range(k + 1, n):
                    if mat[k, j] is not None:
                        assert mat[i, j] is not None


class TestCircuits:
    def test_gate_counts_grow_with_width(self):
        assert kogge_stone_adder(16).num_gates > kogge_stone_adder(4).num_gates
        assert tree_multiplier(8).num_gates > tree_multiplier(4).num_gates

    def test_unknown_gate_kind_rejected(self):
        from repro.inputs import Circuit

        with pytest.raises(ValueError):
            Circuit().add_gate("FLUX")

    def test_inputs_and_outputs_registered(self):
        c = kogge_stone_adder(4)
        assert set(c.inputs) == {f"{p}{i}" for p in "ab" for i in range(4)}
        assert set(c.outputs) == {f"s{i}" for i in range(5)}

    @given(st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=20, deadline=None)
    def test_multiplier_matches_python(self, a, b):
        bits = 6
        c = tree_multiplier(bits)
        vec = {f"a{i}": (a >> i) & 1 for i in range(bits)}
        vec.update({f"b{i}": (b >> i) & 1 for i in range(bits)})
        out = c.evaluate(vec)
        assert sum(out[f"p{i}"] << i for i in range(2 * bits)) == a * b
