"""Tests for the Time Warp optimistic DES comparator."""

import pytest

from repro import SimMachine
from repro.apps import des
from repro.machine import Category


def fresh(bits=6, vectors=5, seed=3):
    return des.make_adder_state(bits, vectors=vectors, seed=seed)


class TestTimeWarpCorrectness:
    def test_single_thread_matches_serial(self):
        reference = fresh()
        des.SPEC.run(reference, "serial", SimMachine(1))
        tw = fresh()
        result = des.SPEC.run(tw, "time-warp", SimMachine(1))
        tw.validate()
        assert tw.snapshot() == reference.snapshot()
        assert result.metrics["rollbacks"] == 0  # in-order at 1 thread

    @pytest.mark.parametrize("threads", [4, 16, 40])
    def test_parallel_matches_serial(self, threads):
        reference = fresh()
        des.SPEC.run(reference, "serial", SimMachine(1))
        tw = fresh()
        des.SPEC.run(tw, "time-warp", SimMachine(threads))
        tw.validate()
        assert tw.snapshot() == reference.snapshot()

    def test_multiplier_circuit(self):
        reference = des.make_multiplier_state(6, vectors=5, seed=9)
        des.SPEC.run(reference, "serial", SimMachine(1))
        tw = des.make_multiplier_state(6, vectors=5, seed=9)
        des.SPEC.run(tw, "time-warp", SimMachine(24))
        tw.validate()
        assert tw.snapshot() == reference.snapshot()


class TestTimeWarpBehavior:
    def test_rollbacks_grow_with_overcommitment(self):
        low = fresh(bits=8, vectors=8)
        r_low = des.SPEC.run(low, "time-warp", SimMachine(4))
        high = fresh(bits=8, vectors=8)
        r_high = des.SPEC.run(high, "time-warp", SimMachine(40))
        assert r_high.metrics["rollbacks"] >= r_low.metrics["rollbacks"]

    def test_rollback_cycles_charged_as_abort(self):
        state = fresh(bits=8, vectors=8)
        result = des.SPEC.run(state, "time-warp", SimMachine(40))
        if result.metrics["rollbacks"]:
            assert result.breakdown()[Category.ABORT] > 0

    def test_every_undone_event_reprocessed(self):
        state = fresh(bits=8, vectors=8)
        baseline = fresh(bits=8, vectors=8)
        base = des.SPEC.run(baseline, "time-warp", SimMachine(1))
        result = des.SPEC.run(state, "time-warp", SimMachine(40))
        # Committed (net) events == the in-order count; the rest was redone.
        assert (
            result.executed - result.metrics["events_undone"] <= base.executed
        )
        assert result.executed >= base.executed

    def test_anti_messages_accompany_rollbacks(self):
        state = fresh(bits=8, vectors=8)
        result = des.SPEC.run(state, "time-warp", SimMachine(40))
        if result.metrics["events_undone"]:
            assert result.metrics["anti_messages"] > 0

    def test_registered_as_extra_impl(self):
        assert des.SPEC.has_impl("time-warp")
        assert "time-warp" in des.SPEC.extra_impls
