"""Unit tests for tasks, factories and execution contexts."""

import pytest

from repro.core import RWSetViolation, Task, TaskFactory
from repro.core.context import BodyContext, RWSetContext


class TestTask:
    def test_key_orders_by_priority_then_tid(self):
        early = Task("a", 1, 5)
        late = Task("b", 2, 0)
        tie = Task("c", 1, 9)
        assert early.key() < late.key()
        assert early.key() < tie.key()

    def test_writes_defaults_empty(self):
        task = Task("a", 0, 0)
        assert not task.writes("x")
        task.write_set = frozenset({"x"})
        assert task.writes("x")


class TestTaskFactory:
    def test_monotonic_tids(self):
        factory = TaskFactory(lambda item: item)
        tasks = factory.make_all([10, 20, 30])
        assert [t.tid for t in tasks] == [0, 1, 2]
        assert factory.make(40).tid == 3
        assert factory.created == 4

    def test_priority_function_applied(self):
        factory = TaskFactory(lambda item: -item)
        assert factory.make(7).priority == -7


class TestRWSetContext:
    def test_collects_in_declaration_order(self):
        ctx = RWSetContext()
        ctx.write("b")
        ctx.read("a")
        assert ctx.rw_set == ("b", "a")

    def test_deduplicates(self):
        ctx = RWSetContext()
        ctx.read("x")
        ctx.write("x")
        ctx.read("x")
        assert ctx.rw_set == ("x",)

    def test_write_set_tracks_writes_only(self):
        ctx = RWSetContext()
        ctx.read("r")
        ctx.write("w")
        assert ctx.write_set == frozenset({"w"})

    def test_write_upgrades_read(self):
        ctx = RWSetContext()
        ctx.read("x")
        ctx.write("x")
        assert "x" in ctx.write_set


class TestBodyContext:
    def test_push_collects(self):
        ctx = BodyContext()
        ctx.push("item1")
        ctx.push("item2")
        assert ctx.pushed == ["item1", "item2"]

    def test_work_accumulates(self):
        ctx = BodyContext()
        ctx.work(10)
        ctx.work(2.5)
        assert ctx.work_done == 12.5

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            BodyContext().work(-1)

    def test_unchecked_access_is_noop(self):
        BodyContext().access("anything")

    def test_checked_access_requires_declaration(self):
        ctx = BodyContext(declared=("a", "b"), checked=True)
        ctx.access("a")
        with pytest.raises(RWSetViolation):
            ctx.access("c")

    def test_checked_flag_exposed(self):
        assert BodyContext(checked=True).checked
        assert not BodyContext().checked
