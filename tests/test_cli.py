"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for app in ("avi", "mst", "billiards", "lu", "des", "bfs", "treesum"):
            assert app in out

    def test_run_prints_summary(self, capsys):
        assert main(["run", "treesum", "--impl", "kdg-manual", "--threads", "4"]) == 0
        out = capsys.readouterr().out
        assert "sim time" in out
        assert "EXECUTE" in out

    def test_run_with_validation(self, capsys):
        assert main(
            ["run", "mst", "--impl", "ikdg", "--threads", "3", "--validate"]
        ) == 0
        assert "matches serial bit-for-bit" in capsys.readouterr().out

    def test_run_serial_forces_one_thread(self, capsys):
        assert main(["run", "lu", "--impl", "serial", "--threads", "16"]) == 0
        assert "@ 1 threads" in capsys.readouterr().out

    def test_missing_impl_errors(self, capsys):
        assert main(["run", "avi", "--impl", "other"]) == 2
        assert "no implementation" in capsys.readouterr().err

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "not-an-app"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["run", "lu", "--impl", "ikdg", "--workers", "4"],
            ["oracle", "lu", "--seeds", "0", "--workers", "4"],
            ["bench", "--quick", "--no-compare", "--workers", "4"],
        ],
        ids=["run", "oracle", "bench"],
    )
    def test_workers_without_mp_backend_errors(self, argv, capsys):
        # Regression: --workers used to parse on every subcommand but was
        # silently ignored unless --backend mp was also given.
        assert main(argv) == 2
        assert "--workers requires --backend mp" in capsys.readouterr().err

    def test_workers_with_mp_backend_accepted(self, capsys):
        assert main(
            ["run", "lu", "--impl", "ikdg", "--backend", "mp", "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "mp backend : 2 worker(s)" in out
