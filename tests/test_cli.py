"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for app in ("avi", "mst", "billiards", "lu", "des", "bfs", "treesum"):
            assert app in out

    def test_run_prints_summary(self, capsys):
        assert main(["run", "treesum", "--impl", "kdg-manual", "--threads", "4"]) == 0
        out = capsys.readouterr().out
        assert "sim time" in out
        assert "EXECUTE" in out

    def test_run_with_validation(self, capsys):
        assert main(
            ["run", "mst", "--impl", "ikdg", "--threads", "3", "--validate"]
        ) == 0
        assert "matches serial bit-for-bit" in capsys.readouterr().out

    def test_run_serial_forces_one_thread(self, capsys):
        assert main(["run", "lu", "--impl", "serial", "--threads", "16"]) == 0
        assert "@ 1 threads" in capsys.readouterr().out

    def test_missing_impl_errors(self, capsys):
        assert main(["run", "avi", "--impl", "other"]) == 2
        assert "no implementation" in capsys.readouterr().err

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "not-an-app"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["run", "lu", "--impl", "ikdg", "--workers", "4"],
            ["oracle", "lu", "--seeds", "0", "--workers", "4"],
            ["bench", "--quick", "--no-compare", "--workers", "4"],
        ],
        ids=["run", "oracle", "bench"],
    )
    def test_workers_without_mp_backend_errors(self, argv, capsys):
        # Regression: --workers used to parse on every subcommand but was
        # silently ignored unless --backend mp was also given.
        assert main(argv) == 2
        assert "--workers requires --backend mp" in capsys.readouterr().err

    def test_workers_with_mp_backend_accepted(self, capsys):
        assert main(
            ["run", "lu", "--impl", "ikdg", "--backend", "mp", "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "mp backend : 2 worker(s)" in out


class TestRelaxedCLI:
    def test_run_relaxed_exact_mode(self, capsys):
        assert main(
            ["run", "sssp", "--impl", "relaxed", "--threads", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "relaxed_mode" in out
        assert "exact" in out

    def test_run_relaxed_delta(self, capsys):
        assert main(
            ["run", "sssp", "--impl", "relaxed", "--threads", "4",
             "--delta", "8", "--validate"]
        ) == 0
        out = capsys.readouterr().out
        assert "buckets_served" in out
        assert "lazy_skips" in out

    def test_run_relaxed_multiqueue(self, capsys):
        assert main(
            ["run", "sssp", "--impl", "relaxed", "--threads", "4",
             "--relaxation", "4", "--validate"]
        ) == 0
        assert "multiqueue" in capsys.readouterr().out

    @pytest.mark.parametrize("impl", ["ikdg", "serial", "level-by-level"])
    def test_knobs_rejected_on_exact_executors(self, impl, capsys):
        assert main(
            ["run", "sssp", "--impl", impl, "--relaxation", "4"]
        ) == 2
        err = capsys.readouterr().err
        assert "relaxed-executor knobs" in err
        assert "--impl relaxed" in err

    def test_delta_rejected_on_exact_executor(self, capsys):
        assert main(["run", "sssp", "--impl", "ikdg", "--delta", "8"]) == 2
        assert "relaxed-executor knobs" in capsys.readouterr().err

    def test_relaxation_on_non_relaxable_app_errors(self, capsys):
        assert main(
            ["run", "mst", "--impl", "relaxed", "--relaxation", "4"]
        ) == 2
        assert "relaxable" in capsys.readouterr().err

    def test_oracle_includes_relaxed_executors(self, capsys):
        assert main(
            ["oracle", "sssp", "--seeds", "0", "--threads", "3",
             "--executors", "serial", "ikdg", "relaxed", "relaxed-mq"]
        ) == 0
        out = capsys.readouterr().out
        assert "relaxed-mq" in out
        assert "rank<=" in out
