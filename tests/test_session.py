"""Streaming sessions: lifecycle edges and the differential bit-identity bar."""

import json

import pytest

from repro.apps import APPS, bfs, des, kcore
from repro.core.mutations import (
    AddEdge,
    InjectEvent,
    MutationError,
    RemoveEdge,
    UnsupportedMutationError,
    WatermarkError,
    mutation_from_dict,
    mutation_to_dict,
)
from repro.oracle.stream import (
    SCHEDULES,
    check_session,
    generate_trace,
    load_trace,
    replay_trace,
)
from repro.runtime.base import RunConfig
from repro.runtime.session import KineticSession


def kcore_session(engine="dict", seed=3):
    return KineticSession(
        APPS["kcore"],
        kcore.make_tiny_state(seed=seed),
        config=RunConfig(engine=engine),
    )


def des_session(seed=4):
    return KineticSession(
        APPS["des"], des.make_stream_multiplier_state(4, vectors=2, seed=seed)
    )


class TestLifecycle:
    def test_open_by_name(self):
        with KineticSession.open("kcore", kcore.make_tiny_state(seed=3)) as sess:
            assert sess.spec.name == "kcore"
            assert sess.batches_applied == 0
            sess.validate()

    def test_open_unknown_app(self):
        with pytest.raises(ValueError, match="unknown app"):
            KineticSession.open("nope")

    def test_app_without_adapter_rejected(self):
        with pytest.raises(ValueError, match="no streaming adapter"):
            KineticSession.open("mst")

    def test_empty_batch_is_noop(self):
        with kcore_session() as sess:
            before = sess.snapshot()
            cycles = sess.machine.elapsed_cycles()
            result = sess.apply([])
            assert result.batch_size == 0
            assert result.tasks_rerun == 0
            assert result.repair_cycles == 0.0
            assert result.trace is None
            assert sess.snapshot() == before
            assert sess.machine.elapsed_cycles() == cycles
            assert sess.batches_applied == 0

    def test_mp_backend_rejected(self):
        with pytest.raises(ValueError, match="backend='mp' is not supported"):
            KineticSession(
                APPS["kcore"],
                kcore.make_tiny_state(seed=3),
                config=RunConfig(engine="flat", backend="mp"),
            )

    def test_close_is_idempotent(self):
        sess = kcore_session(engine="flat")
        sess.apply([AddEdge(0, 9)])
        assert sess._session_state._pool is not None
        sess.close()
        assert sess._session_state._pool is None
        sess.close()
        with pytest.raises(RuntimeError, match="closed"):
            sess.apply([AddEdge(1, 5)])

    def test_unsupported_mutation_does_not_poison(self):
        with kcore_session() as sess:
            before = sess.snapshot()
            with pytest.raises(UnsupportedMutationError) as exc:
                sess.apply([AddEdge(0, 9), InjectEvent(1.0, {})])
            assert exc.value.adapter == "KCoreAdapter"
            # Pre-validation is transactional: nothing was applied.
            assert sess.snapshot() == before
            sess.apply([AddEdge(0, 9)])
            sess.validate()

    def test_failed_application_poisons_session(self):
        sess = KineticSession(
            APPS["bfs"], bfs.make_random_state(60, avg_degree=3.0, seed=3)
        )
        with pytest.raises(MutationError, match="outside node range"):
            sess.apply([AddEdge(0, 10**6)])
        with pytest.raises(RuntimeError, match="poisoned"):
            sess.apply([AddEdge(0, 1)])
        sess.close()  # close() stays valid after poisoning

    def test_close_releases_pool_after_failed_batch(self):
        sess = KineticSession(
            APPS["bfs"],
            bfs.make_random_state(60, avg_degree=3.0, seed=3),
            config=RunConfig(engine="flat"),
        )
        sess.apply([AddEdge(0, 1)])
        assert sess._session_state._pool is not None
        with pytest.raises(MutationError):
            sess.apply([AddEdge(0, 10**6)])
        sess.close()
        assert sess._session_state._pool is None


class TestWatermark:
    def test_fixpoint_sessions_have_no_watermark_checks(self):
        with kcore_session() as sess:
            # Any batch order is fine: remove then re-add the same edge.
            u, v = sess.state.edges()[0]
            sess.apply([RemoveEdge(u, v)])
            sess.apply([AddEdge(u, v)])
            sess.validate()

    def test_injection_below_watermark_is_structured_error(self):
        with des_session() as sess:
            watermark = sess.watermark
            assert watermark is not None
            stale = InjectEvent(0.0, {})
            with pytest.raises(WatermarkError) as exc:
                sess.apply([stale])
            assert exc.value.mutation is stale
            assert exc.value.priority == (0.0,)
            assert exc.value.watermark == watermark
            # Rejected before application: session is not poisoned.
            names = sorted(sess.state.circuit.inputs)
            late = float(int(watermark[0]) + 10)
            sess.apply([InjectEvent(late, {n: 1 for n in names})])
            assert sess.watermark > watermark

    def test_watermark_advances_monotonically(self):
        with des_session() as sess:
            names = sorted(sess.state.circuit.inputs)
            seen = [sess.watermark]
            for step in (10, 20):
                t = float(int(seen[-1][0]) + step)
                sess.apply([InjectEvent(t, {n: step % 2 for n in names})])
                seen.append(sess.watermark)
            assert seen == sorted(seen)


class TestMutationCodec:
    @pytest.mark.parametrize("mutation", [
        AddEdge(3, 9),
        AddEdge(1, 2, weight=0.5),
        RemoveEdge(4, 7),
        InjectEvent(120.0, {"a0": 1}),
    ])
    def test_roundtrip(self, mutation):
        data = mutation_to_dict(mutation)
        assert json.loads(json.dumps(data)) == data
        assert mutation_from_dict(data) == mutation

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown mutation op"):
            mutation_from_dict({"op": "frobnicate"})

    def test_non_mutation_rejected(self):
        with pytest.raises(ValueError, match="not a mutation"):
            mutation_to_dict(object())


class TestDifferential:
    """The acceptance matrix: session state bit-identical to a cold run
    after every batch, across schedules x seeds x engines."""

    @pytest.mark.parametrize("engine", ["dict", "flat"])
    @pytest.mark.parametrize("schedule", sorted(SCHEDULES))
    @pytest.mark.parametrize("seed", [3, 7, 11])
    @pytest.mark.parametrize("app", ["kcore", "bfs"])
    def test_session_matches_cold_rebuild(self, app, seed, schedule, engine):
        report = check_session(app, seed=seed, schedule=schedule, engine=engine)
        assert report.ok, [b.index for b in report.batches if b.match is False]
        assert all(b.match is True for b in report.batches)

    @pytest.mark.parametrize("seed", [4, 9])
    def test_des_session_matches_cold_rebuild(self, seed):
        report = check_session("des", seed=seed, schedule="mixed")
        assert report.ok

    def test_dict_and_flat_sessions_agree(self):
        trace = generate_trace("kcore", seed=7, schedule="bursts")
        reports = {
            engine: replay_trace(trace, engine=engine) for engine in ("dict", "flat")
        }
        d, f = reports["dict"], reports["flat"]
        assert d.ok and f.ok
        assert [b.tasks_rerun for b in d.batches] == [b.tasks_rerun for b in f.batches]
        assert [b.repair_cycles for b in d.batches] == [
            b.repair_cycles for b in f.batches
        ]

    def test_small_batches_repair_far_cheaper_than_rebuild(self):
        report = check_session("kcore", seed=3, schedule="singles")
        assert report.cycle_ratio is not None
        assert report.cycle_ratio < 0.5

    def test_repair_result_speedup(self):
        with kcore_session() as sess:
            u, v = sess.state.edges()[0]
            result = sess.apply([RemoveEdge(u, v)], measure_rebuild=True)
            assert result.rebuild_cycles is not None
            if result.repair_cycles > 0:
                assert result.speedup == pytest.approx(
                    result.rebuild_cycles / result.repair_cycles
                )

    def test_repair_trace_carries_committed_schedule(self):
        with kcore_session() as sess:
            u, v = sess.state.edges()[0]
            result = sess.apply([RemoveEdge(u, v)])
            assert result.trace is not None
            assert len(result.trace) == result.tasks_rerun
            assert result.trace.executor == "session:ikdg"


class TestTraceFiles:
    def test_fixture_replays_clean(self, tmp_path):
        trace = load_trace("tests/fixtures/stream/kcore_mixed.json")
        assert trace["schema"] == "repro.stream.trace/v1"
        report = replay_trace(trace, measure_rebuild=False)
        assert report.ok

    def test_generate_is_deterministic(self):
        a = generate_trace("bfs", seed=5, schedule="singles")
        b = generate_trace("bfs", seed=5, schedule="singles")
        assert a == b

    def test_replay_rejects_foreign_schema(self):
        with pytest.raises(ValueError, match="not a stream trace"):
            replay_trace({"schema": "something/else"})


class TestStreamCLI:
    def test_replay_fixture(self, capsys):
        from repro.cli import main

        assert main(["stream", "tests/fixtures/stream/kcore_mixed.json"]) == 0
        out = capsys.readouterr().out
        assert "match" in out and "DIVERGED" not in out

    def test_generate_and_json(self, capsys, tmp_path):
        from repro.cli import main

        save = tmp_path / "trace.json"
        code = main([
            "stream", "--app", "kcore", "--seed", "3", "--schedule", "bursts",
            "--save", str(save), "--json",
        ])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert json.loads(save.read_text())["schema"] == "repro.stream.trace/v1"

    def test_trace_and_app_are_exclusive(self, capsys):
        from repro.cli import main

        assert main(["stream", "x.json", "--app", "kcore"]) == 2
        assert main(["stream"]) == 2
