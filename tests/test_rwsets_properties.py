"""Property-based tests for the bipartite rw-set indexes.

Random add/remove interleavings against a naive reference model, run
simultaneously through the dict :class:`repro.core.rwsets.RWSetIndex` and
the flat :class:`repro.core.flat.index.FlatRWIndex` (with a shared
:class:`repro.core.flat.interner.LocationInterner`).  Both must agree with
the model — and with each other — on membership, bucket contents and
order, edge-op counts, and the empty state after a full round trip.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flat.index import FlatRWIndex
from repro.core.flat.interner import LocationInterner
from repro.core.rwsets import RWSetIndex
from repro.core.task import Task

# A tiny location alphabet forces heavy sharing; mixed types exercise the
# interner's hashable-anything contract.
LOCATIONS = st.sampled_from(
    ["x", "y", ("edge", 0), ("edge", 1), 7, ("cell", 2, 3)]
)

RW_SETS = st.lists(LOCATIONS, min_size=0, max_size=4, unique=True)

# An op is ("add", rw_set, n_writes) | ("remove", index): the index selects
# one of the currently registered tasks (modulo their count), and the first
# ``n_writes`` locations of the rw-set are declared written.
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("add"), RW_SETS, st.integers(min_value=0, max_value=4)),
        st.tuples(st.just("remove"), st.integers(min_value=0, max_value=63)),
    ),
    max_size=60,
)


def _make_task(tid: int, rw: list, n_writes: int) -> Task:
    task = Task(item=tid, priority=tid, tid=tid)
    task.rw_set = tuple(rw)
    task.write_set = frozenset(rw[:n_writes])
    task.rw_valid = True
    return task


class TestIndexModel:
    @given(ops=OPS)
    @settings(max_examples=200, deadline=None)
    def test_dict_and_flat_match_naive_model(self, ops):
        dict_index = RWSetIndex()
        interner = LocationInterner()
        flat_index = FlatRWIndex()
        # Model: insertion-ordered list of live tasks.
        model: list[Task] = []
        tid = 0
        for op in ops:
            if op[0] == "add":
                task = _make_task(tid, op[1], op[2])
                tid += 1
                ids, wmask = interner.task_arrays(task)
                d_ops = dict_index.add(task, task.rw_set)
                f_ops = flat_index.add(task, ids, wmask)
                assert d_ops == f_ops == 1 + len(task.rw_set)
                model.append(task)
            else:
                if not model:
                    continue
                task = model.pop(op[1] % len(model))
                d_ops = dict_index.remove(task)
                f_ops = flat_index.remove(task)
                assert d_ops == f_ops == 1 + len(task.rw_set)

            # Membership and size agree everywhere.
            assert len(dict_index) == len(flat_index) == len(model)
            for t in model:
                assert t in dict_index
                assert t in flat_index
                assert dict_index.rw_set(t) == t.rw_set
            # Per-location buckets hold the same tasks in insertion order
            # (FlatRWIndex's shift-delete preserves it; RWSetIndex's dict
            # buckets do natively).
            live_locs = {loc for t in model for loc in t.rw_set}
            for loc in live_locs:
                expected = [t for t in model if loc in t.rw_set]
                expected.sort(key=lambda t: t.tid)
                assert dict_index.tasks_at(loc) == expected
                assert flat_index.tasks_at(interner.intern(loc)) == expected
            # tasks_sharing: distinct tasks over any subset of locations,
            # including the single-location short-circuit path.
            for probe in [(), *[(loc,) for loc in live_locs], tuple(live_locs)]:
                expected = [t for t in model if set(probe) & set(t.rw_set)]
                got = dict_index.tasks_sharing(probe)
                assert sorted(got, key=lambda t: t.tid) == expected
                assert len(got) == len(set(got))

        # Full round trip: removing every survivor leaves both indexes empty.
        for task in list(model):
            assert dict_index.remove(task) == flat_index.remove(task)
        assert len(dict_index) == len(flat_index) == 0
        assert dict_index.tasks_sharing(("x",)) == []
        assert flat_index.tasks_at(interner.intern("x")) == []

    def test_tasks_sharing_single_location_short_circuit(self):
        """The tuple-of-one fast path returns the bucket verbatim."""
        index = RWSetIndex()
        t1 = _make_task(0, ["x", "y"], 1)
        t2 = _make_task(1, ["x"], 0)
        index.add(t1, t1.rw_set)
        index.add(t2, t2.rw_set)
        assert index.tasks_sharing(("x",)) == [t1, t2]
        assert index.tasks_sharing(("y",)) == [t1]
        assert index.tasks_sharing(("z",)) == []
        # General path still deduplicates across buckets.
        assert index.tasks_sharing(("x", "y")) == [t1, t2]
