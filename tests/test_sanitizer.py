"""Runtime access-sanitizer tests.

An under-declared billiards visitor (the second ball of a collision is
omitted from the rw-set) must be caught under both IKDG and KDG-RNA, with
the violation fully attributed; the same run without the sanitizer goes
through silently — which is exactly the hazard the sanitizer closes.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis import AccessSanitizer
from repro.apps import APPS
from repro.apps.billiards.simulation import BALL
from repro.core.context import RWSetViolation
from repro.machine import SimMachine
from repro.oracle.workloads import make_oracle_state
from repro.runtime import run_ikdg, run_kdg_rna, run_serial


def under_declared_billiards():
    """Billiards whose visitor forgets the collision's second ball."""
    state = make_oracle_state("billiards", seed=0)
    algorithm = APPS["billiards"].algorithm(state)

    def forgetful_visit(item, ctx):
        ctx.write(("ball", item[2]))
        # BUG under test: for BALL events the body also touches
        # ("ball", item[3]), which this visitor fails to declare.

    return dataclasses.replace(algorithm, visit_rw_sets=forgetful_visit)


@pytest.mark.parametrize(
    "run,phase",
    [
        (run_ikdg, "ikdg/phase-III"),
        (run_kdg_rna, "kdg-rna/execute"),
    ],
    ids=["ikdg", "kdg-rna"],
)
def test_under_declared_billiards_is_caught(run, phase):
    algorithm = under_declared_billiards()
    with pytest.raises(RWSetViolation) as excinfo:
        run(algorithm, SimMachine(3), sanitize=True)
    violation = excinfo.value
    assert violation.phase == phase
    assert violation.location[0] == "ball"
    # The undeclared location is the collision's second ball.
    assert violation.task.item[1] == BALL
    assert violation.location == ("ball", violation.task.item[3])
    assert violation.location not in violation.declared
    assert violation.priority == violation.task.priority
    assert "undeclared" in str(violation)


@pytest.mark.parametrize("run", [run_ikdg, run_kdg_rna], ids=["ikdg", "kdg-rna"])
def test_without_sanitizer_the_bug_runs_silently(run):
    result = run(under_declared_billiards(), SimMachine(3))
    assert result.executed > 0


def test_serial_sanitized_run_is_clean():
    state = make_oracle_state("lu", seed=0)
    algorithm = APPS["lu"].algorithm(state)
    result = run_serial(
        algorithm, SimMachine(1), baseline=APPS["lu"].serial_baseline, sanitize=True
    )
    assert result.executed > 0


def test_sanitizer_counts_tasks_and_accesses():
    state = make_oracle_state("lu", seed=0)
    algorithm = APPS["lu"].algorithm(state)
    sanitizer = AccessSanitizer(algorithm, phase="test")
    task = algorithm.task_factory().make_all(algorithm.initial_items)[0]
    algorithm.compute_rw_set(task)
    ctx = algorithm.execute_body(task, record=True)
    sanitizer.check(task, ctx)
    assert sanitizer.checked_tasks == 1
    assert sanitizer.checked_accesses == len(ctx.accessed)
    assert len(ctx.accessed) >= 1


def test_recompute_path_catches_dependences_apps():
    # treesum's explicit-dependences fast path never computes rw-sets
    # (rw_valid stays False); the sanitizer must recompute via the visitor
    # instead of trusting the unbound empty rw-set.
    state = make_oracle_state("treesum", seed=0)
    algorithm = APPS["treesum"].algorithm(state)
    result = run_kdg_rna(algorithm, SimMachine(3), sanitize=True)
    assert result.executed > 0

    def forgetful_visit(item, ctx):
        pass  # declares nothing: every body access is undeclared

    broken = dataclasses.replace(algorithm, visit_rw_sets=forgetful_visit)
    with pytest.raises(RWSetViolation):
        run_kdg_rna(
            broken,
            SimMachine(3),
            sanitize=True,
        )
