"""Tests for conflict-aware tracked data structures."""

import pytest

from repro import AlgorithmProperties, SimMachine
from repro.core import OrderedAlgorithm, RWSetViolation
from repro.core.context import BodyContext, RWSetContext
from repro.galois import TrackedArray
from repro.runtime import run_ikdg, run_serial


class TestTrackedArray:
    def test_touch_declares_write(self):
        arr = TrackedArray("a", [0, 0, 0])
        ctx = RWSetContext()
        with arr.declaring(ctx):
            arr.touch(1)
        assert ctx.rw_set == (("a", 1),)
        assert ("a", 1) in ctx.write_set

    def test_observe_declares_read_and_returns(self):
        arr = TrackedArray("a", [7, 8, 9])
        ctx = RWSetContext()
        with arr.declaring(ctx):
            assert arr.observe(2) == 9
        assert ctx.rw_set == (("a", 2),)
        assert ctx.write_set == frozenset()

    def test_touch_outside_declaring_rejected(self):
        arr = TrackedArray("a", [0])
        with pytest.raises(RuntimeError, match="outside declaring"):
            arr.touch(0)

    def test_checked_access_enforced(self):
        arr = TrackedArray("a", [0, 0])
        body = BodyContext(declared=(("a", 0),), checked=True)
        with arr.accessing(body):
            arr[0] = 5
            with pytest.raises(RWSetViolation):
                arr[1] = 6

    def test_untracked_access_outside_context(self):
        arr = TrackedArray("a", [1, 2])
        assert arr[0] == 1  # plain access when unbound
        arr[1] = 5
        assert arr.raw() == [1, 5]

    def test_context_unbinds_on_exit(self):
        arr = TrackedArray("a", [0])
        with arr.declaring(RWSetContext()):
            pass
        with pytest.raises(RuntimeError):
            arr.touch(0)

    def test_end_to_end_with_executor(self):
        """A whole ordered loop written against TrackedArray."""
        values = TrackedArray("cell", [0] * 6)

        def visit(item, ctx):
            with values.declaring(ctx):
                values.touch(item % 6)

        def body(item, ctx):
            ctx.work(30)
            with values.accessing(ctx):
                values[item % 6] += item

        algorithm = OrderedAlgorithm(
            name="tracked-loop",
            initial_items=list(range(24)),
            priority=lambda x: x,
            visit_rw_sets=visit,
            apply_update=body,
            properties=AlgorithmProperties(
                stable_source=True, monotonic=True, no_new_tasks=True,
                structure_based_rw_sets=True,
            ),
        )
        run_ikdg(algorithm, SimMachine(4), checked=True)
        expected = [sum(i for i in range(24) if i % 6 == c) for c in range(6)]
        assert values.raw() == expected

    def test_serial_matches_parallel(self):
        def build():
            values = TrackedArray("cell", [0] * 4)

            def visit(item, ctx):
                with values.declaring(ctx):
                    values.touch(item % 4)

            def body(item, ctx):
                with values.accessing(ctx):
                    values[item % 4] = values[item % 4] * 2 + item

            return values, OrderedAlgorithm(
                name="t",
                initial_items=list(range(12)),
                priority=lambda x: x,
                visit_rw_sets=visit,
                apply_update=body,
                properties=AlgorithmProperties(
                    stable_source=True, monotonic=True, no_new_tasks=True,
                    structure_based_rw_sets=True,
                ),
            )

        serial_values, serial_algorithm = build()
        run_serial(serial_algorithm)
        parallel_values, parallel_algorithm = build()
        run_ikdg(parallel_algorithm, SimMachine(3))
        assert parallel_values.raw() == serial_values.raw()
