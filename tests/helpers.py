"""Shared test helpers: tiny workloads and a toy ordered algorithm."""

from __future__ import annotations

from repro import AlgorithmProperties, OrderedAlgorithm
from repro.apps import astar, avi, bfs, billiards, des, kcore, lu, mst, sssp, treesum

#: Tiny state builders per app: fast enough for the full executor matrix.
TINY_STATES = {
    "avi": lambda: avi.make_state(6, 6, end_time=0.3, seed=11),
    "mst": lambda: mst.make_grid_state(12, 12, seed=11),
    "billiards": lambda: billiards.make_state(24, end_time=10.0, seed=11),
    "lu": lambda: lu.make_state(8, 6, seed=11),
    "des": lambda: des.make_adder_state(8, vectors=4, seed=11),
    "bfs": lambda: bfs.make_grid_state(16, 16, seed=11),
    "treesum": lambda: treesum.make_state(800, leaf_size=8, seed=11),
    "kcore": lambda: kcore.make_tiny_state(seed=11),
    "sssp": lambda: sssp.make_grid_state(12, 12, seed=11),
    "astar": lambda: astar.make_grid_state(14, 14, seed=11),
}


class ChainCounter:
    """Toy app: ``cells`` counters, each bumped by a chain of ordered tasks.

    Task ``(step, cell)`` adds ``step`` to its cell's sum and pushes
    ``(step + 1, cell)`` until ``steps`` per cell are done.  Tasks on the
    same cell conflict; tasks on different cells are independent.  The
    final sums are a simple serializability oracle.
    """

    def __init__(self, cells: int = 4, steps: int = 6, work: float = 40.0):
        self.cells = cells
        self.steps = steps
        self.work = work
        self.sums = [0] * cells
        self.history: list[tuple[int, int]] = []

    def algorithm(self, **overrides) -> OrderedAlgorithm:
        properties = overrides.pop(
            "properties",
            AlgorithmProperties(
                stable_source=True,
                monotonic=True,
                structure_based_rw_sets=True,
            ),
        )

        def visit(item, ctx):
            ctx.write(("cell", item[1]))

        def body(item, ctx):
            step, cell = item
            ctx.access(("cell", cell))
            ctx.work(self.work)
            self.sums[cell] += step
            self.history.append(item)
            if step + 1 <= self.steps:
                ctx.push((step + 1, cell))

        return OrderedAlgorithm(
            name="chain-counter",
            initial_items=[(1, c) for c in range(self.cells)],
            priority=lambda item: (item[0], item[1]),
            visit_rw_sets=visit,
            apply_update=body,
            properties=properties,
            **overrides,
        )

    def expected_sums(self) -> list[int]:
        total = self.steps * (self.steps + 1) // 2
        return [total] * self.cells
