"""Unit tests for the simulated machine (repro.machine.simcore)."""

import pytest

from repro.machine import Category, CostModel, SimMachine

FLAT = CostModel(barrier_base=0.0, barrier_per_thread=0.0)


def exec_cost(cycles):
    return {Category.EXECUTE: float(cycles)}


class TestCharging:
    def test_requires_positive_threads(self):
        with pytest.raises(ValueError):
            SimMachine(0)

    def test_charge_advances_clock_and_stats(self):
        m = SimMachine(2)
        m.charge(1, Category.EXECUTE, 100.0)
        assert m.clocks == [0.0, 100.0]
        assert m.stats.total(Category.EXECUTE) == 100.0

    def test_charge_serial_uses_thread_zero(self):
        m = SimMachine(3)
        m.charge_serial(Category.SCHEDULE, 10.0)
        assert m.clocks[0] == 10.0

    def test_set_clock_monotonic(self):
        m = SimMachine(1)
        m.set_clock(0, 5.0)
        with pytest.raises(ValueError):
            m.set_clock(0, 1.0)

    def test_elapsed_is_max_clock(self):
        m = SimMachine(2)
        m.charge(0, Category.EXECUTE, 10.0)
        m.charge(1, Category.EXECUTE, 30.0)
        assert m.elapsed_cycles() == 30.0

    def test_elapsed_seconds(self):
        m = SimMachine(1, CostModel(frequency_hz=1e9))
        m.charge(0, Category.EXECUTE, 1e9)
        assert m.elapsed_seconds() == pytest.approx(1.0)


class TestRunPhase:
    def test_even_distribution(self):
        m = SimMachine(4, FLAT)
        m.run_phase([exec_cost(100)] * 8)
        # 8 equal items over 4 threads: 2 each, makespan 200.
        assert m.elapsed_cycles() == 200.0

    def test_greedy_least_loaded(self):
        m = SimMachine(2, FLAT)
        # 300 goes to t0; 100,100 land on t1; final 100 on whichever is
        # shorter (t1 at 200) -> makespan 300.
        m.run_phase([exec_cost(300), exec_cost(100), exec_cost(100), exec_cost(100)])
        assert m.elapsed_cycles() == 300.0

    def test_single_thread_serializes(self):
        m = SimMachine(1, FLAT)
        m.run_phase([exec_cost(50)] * 4)
        assert m.elapsed_cycles() == 200.0

    def test_barrier_aligns_clocks(self):
        m = SimMachine(2, FLAT)
        m.run_phase([exec_cost(100)])
        assert m.clocks[0] == m.clocks[1] == 100.0

    def test_barrier_charges_idle(self):
        m = SimMachine(2, FLAT)
        m.run_phase([exec_cost(100)])
        assert m.stats.total(Category.IDLE) == 100.0  # the empty thread waits

    def test_barrier_cost_added(self):
        cm = CostModel(barrier_base=10.0, barrier_per_thread=0.0)
        m = SimMachine(2, cm)
        m.run_phase([exec_cost(100)])
        assert m.elapsed_cycles() == 110.0
        assert m.barrier_count == 1

    def test_no_barrier_option(self):
        m = SimMachine(2, FLAT)
        m.run_phase([exec_cost(100)], barrier=False)
        assert m.clocks[0] == 100.0
        assert m.clocks[1] == 0.0

    def test_chunked_assignment_keeps_chunk_together(self):
        m = SimMachine(2, FLAT)
        # chunk_size 2: (100,100) to t0, (100,100) to t1 -> makespan 200.
        m.run_phase([exec_cost(100)] * 4, chunk_size=2)
        assert m.elapsed_cycles() == 200.0

    def test_chunk_size_validated(self):
        with pytest.raises(ValueError):
            SimMachine(1).run_phase([], chunk_size=0)

    def test_mixed_categories_in_one_item(self):
        m = SimMachine(1, FLAT)
        m.run_phase([{Category.EXECUTE: 10.0, Category.SCHEDULE: 5.0}])
        assert m.stats.total(Category.EXECUTE) == 10.0
        assert m.stats.total(Category.SCHEDULE) == 5.0
        assert m.elapsed_cycles() == 15.0

    def test_phase_count_increments(self):
        m = SimMachine(1, FLAT)
        m.run_phase([])
        m.run_phase([])
        assert m.phase_count == 2

    def test_empty_phase_on_multithread_still_barriers(self):
        cm = CostModel(barrier_base=7.0, barrier_per_thread=0.0)
        m = SimMachine(4, cm)
        m.run_phase([])
        assert m.elapsed_cycles() == 7.0
