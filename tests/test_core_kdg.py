"""Unit tests for the KDG (rw-set index, edge wiring, safety, liveness)."""

import pytest

from repro.core import KDG, LivenessViolation, SafetyViolation, Task
from repro.core.rwsets import RWSetIndex


class TestRWSetIndex:
    def test_add_and_lookup(self):
        index = RWSetIndex()
        t = Task("a", 0, 0)
        index.add(t, ["x", "y"])
        assert index.rw_set(t) == ("x", "y")
        assert index.tasks_at("x") == [t]
        assert t in index

    def test_duplicate_add_rejected(self):
        index = RWSetIndex()
        t = Task("a", 0, 0)
        index.add(t, ["x"])
        with pytest.raises(ValueError):
            index.add(t, ["y"])

    def test_remove_clears_buckets(self):
        index = RWSetIndex()
        t = Task("a", 0, 0)
        index.add(t, ["x"])
        index.remove(t)
        assert index.tasks_at("x") == []
        assert len(index) == 0

    def test_tasks_sharing_deduplicates(self):
        index = RWSetIndex()
        t1, t2 = Task("a", 0, 0), Task("b", 1, 1)
        index.add(t1, ["x", "y"])
        index.add(t2, ["y", "z"])
        assert index.tasks_sharing(["x", "y", "z"]) == [t1, t2]

    def test_ops_counted(self):
        index = RWSetIndex()
        t = Task("a", 0, 0)
        assert index.add(t, ["x", "y", "z"]) == 4  # node + 3 locations
        assert index.remove(t) == 4


class TestKDGEdgeWiring:
    def test_shared_location_creates_edge_by_key(self):
        kdg = KDG()
        early, late = Task("e", 1, 0), Task("l", 2, 1)
        kdg.add_task(late, ["x"])
        kdg.add_task(early, ["x"])
        assert kdg.graph.successors(early) == [late]
        assert kdg.sources() == [early]

    def test_disjoint_tasks_both_sources(self):
        kdg = KDG()
        a, b = Task("a", 1, 0), Task("b", 2, 1)
        kdg.add_task(a, ["x"])
        kdg.add_task(b, ["y"])
        assert set(kdg.sources()) == {a, b}

    def test_tie_broken_by_tid(self):
        kdg = KDG()
        first, second = Task("f", 1, 0), Task("s", 1, 1)
        kdg.add_task(second, ["x"])
        kdg.add_task(first, ["x"])
        assert kdg.sources() == [first]

    def test_default_all_writes(self):
        kdg = KDG()
        a, b = Task("a", 1, 0), Task("b", 2, 1)
        kdg.add_task(a, ["x"])  # writes=None -> conservative
        kdg.add_task(b, ["x"])
        assert not kdg.graph.is_source(b)

    def test_read_read_no_conflict(self):
        kdg = KDG()
        a, b = Task("a", 1, 0), Task("b", 2, 1)
        kdg.add_task(a, ["x"], writes=frozenset())
        kdg.add_task(b, ["x"], writes=frozenset())
        assert set(kdg.sources()) == {a, b}

    def test_read_write_conflicts(self):
        kdg = KDG()
        reader, writer = Task("r", 1, 0), Task("w", 2, 1)
        kdg.add_task(reader, ["x"], writes=frozenset())
        kdg.add_task(writer, ["x"], writes=frozenset({"x"}))
        assert kdg.sources() == [reader]

    def test_remove_task_returns_neighbors(self):
        kdg = KDG()
        a, b = Task("a", 1, 0), Task("b", 2, 1)
        kdg.add_task(a, ["x"])
        kdg.add_task(b, ["x"])
        neighbors, _ = kdg.remove_task(a)
        assert neighbors == [b]
        assert kdg.sources() == [b]

    def test_refresh_task_rewires(self):
        kdg = KDG()
        a, b = Task("a", 1, 0), Task("b", 2, 1)
        kdg.add_task(a, ["x"])
        kdg.add_task(b, ["x"])
        b.write_set = frozenset({"y"})
        kdg.refresh_task(b, ["y"])
        assert set(kdg.sources()) == {a, b}

    def test_earliest(self):
        kdg = KDG()
        a, b = Task("a", 5, 0), Task("b", 2, 1)
        kdg.add_task(a, ["x"])
        kdg.add_task(b, ["y"])
        assert kdg.earliest() is b
        kdg.remove_task(b)
        assert kdg.earliest() is a

    def test_earliest_empty(self):
        assert KDG().earliest() is None


class TestSafetyAndLiveness:
    def test_protected_source_raises_on_incoming_edge(self):
        kdg = KDG(check_safety=True)
        source = Task("s", 5, 0)
        kdg.add_task(source, ["x"])
        kdg.protect(source)
        intruder = Task("i", 1, 1)  # earlier task sharing the location
        with pytest.raises(SafetyViolation):
            kdg.add_task(intruder, ["x"])

    def test_unprotected_allows_edge(self):
        kdg = KDG(check_safety=True)
        source = Task("s", 5, 0)
        kdg.add_task(source, ["x"])
        kdg.protect(source)
        kdg.unprotect(source)
        kdg.add_task(Task("i", 1, 1), ["x"])  # no exception

    def test_safety_check_disabled_by_default(self):
        kdg = KDG()
        source = Task("s", 5, 0)
        kdg.add_task(source, ["x"])
        kdg.protect(source)
        kdg.add_task(Task("i", 1, 1), ["x"])  # silently allowed

    def test_liveness_ok_when_earliest_priority_safe(self):
        kdg = KDG()
        a, b = Task("a", 1, 0), Task("b", 2, 1)
        kdg.add_task(a, ["x"])
        kdg.add_task(b, ["x"])
        kdg.assert_liveness([a])

    def test_liveness_violated(self):
        kdg = KDG()
        a, b = Task("a", 1, 0), Task("b", 2, 1)
        kdg.add_task(a, ["x"])
        kdg.add_task(b, ["y"])
        with pytest.raises(LivenessViolation):
            kdg.assert_liveness([b])

    def test_liveness_trivial_when_empty(self):
        KDG().assert_liveness([])


class TestMinQueriesAvoidNodeScans:
    """``earliest``/``assert_liveness`` run off the internal min-tracker;
    regression guard against the old O(n) full-graph scans per round."""

    @staticmethod
    def _counting_kdg(n_tasks):
        kdg = KDG()
        tasks = [Task(f"t{i}", i, i) for i in range(n_tasks)]
        for t in tasks:
            kdg.add_task(t, [f"loc{t.tid}"])
        visits = {"count": 0}
        real_nodes = kdg.graph.nodes

        def counting_nodes():
            visits["count"] += 1
            return real_nodes()

        kdg.graph.nodes = counting_nodes
        return kdg, tasks, visits

    def test_earliest_visits_no_nodes(self):
        kdg, tasks, visits = self._counting_kdg(16)
        assert kdg.earliest() is tasks[0]
        kdg.remove_task(tasks[0])
        assert kdg.earliest() is tasks[1]
        assert visits["count"] == 0

    def test_liveness_success_path_visits_no_nodes(self):
        kdg, tasks, visits = self._counting_kdg(16)
        kdg.assert_liveness([tasks[0]])
        assert visits["count"] == 0

    def test_liveness_failure_path_still_diagnoses(self):
        kdg, tasks, visits = self._counting_kdg(4)
        with pytest.raises(LivenessViolation, match="1 earliest-priority"):
            kdg.assert_liveness([tasks[3]])
        assert visits["count"] == 1  # scan only to build the message
