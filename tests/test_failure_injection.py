"""Failure injection: the runtime must catch property violations loudly.

The KDG's guarantees rest on the properties applications declare.  These
tests hand the runtime *lying* algorithms and check that the built-in
verifiers (Safety check, Liveness check, cautiousness enforcement,
monotonicity check) catch them instead of silently computing wrong answers.
"""

import pytest

from repro import AlgorithmProperties, SimMachine
from repro.core import (
    LivenessViolation,
    OrderedAlgorithm,
    RWSetViolation,
    SafetyViolation,
)
from repro.runtime import run_ikdg, run_kdg_rna, run_level_by_level, run_serial


def falsely_stable_algorithm():
    """Claims stable-source, but a parent spawns an *earlier* conflicting
    task than a pending source — the classic unstable-source hazard."""

    def visit(item, ctx):
        ctx.write(("cell", item[1]))

    def body(item, ctx):
        priority, cell = item
        if priority == 1:
            # Parent on cell 'x' creates a task on cell 'y' at priority 2,
            # before the pending (3, 'y') task that is already a source.
            ctx.push((2, "y"))

    return OrderedAlgorithm(
        name="liar",
        initial_items=[(1, "x"), (3, "y")],
        priority=lambda item: item[0],
        visit_rw_sets=visit,
        apply_update=body,
        properties=AlgorithmProperties(
            stable_source=True, monotonic=True, structure_based_rw_sets=True
        ),
    )


class TestSafetyCheck:
    def test_async_executor_detects_false_stability(self):
        with pytest.raises(SafetyViolation):
            run_kdg_rna(
                falsely_stable_algorithm(), SimMachine(2), check_safety=True
            )

    def test_violation_unnoticed_without_check(self):
        # Without the checker the executor silently mis-serializes — this
        # documents why check_safety exists.
        run_kdg_rna(falsely_stable_algorithm(), SimMachine(2))


class TestLivenessCheck:
    def test_rounds_raise_on_dead_test(self):
        algorithm = OrderedAlgorithm(
            name="deadlock",
            initial_items=[1, 2],
            priority=lambda x: x,
            visit_rw_sets=lambda item, ctx: ctx.write("cell"),
            apply_update=lambda item, ctx: None,
            properties=AlgorithmProperties(monotonic=True),
            safe_source_test=lambda task, view: False,
        )
        with pytest.raises(LivenessViolation):
            run_kdg_rna(algorithm, SimMachine(2), asynchronous=False)
        with pytest.raises(LivenessViolation):
            run_ikdg(algorithm, SimMachine(2))


class TestCautiousness:
    def test_undeclared_write_caught_in_checked_mode(self):
        def visit(item, ctx):
            ctx.write(("cell", item))

        def sloppy_body(item, ctx):
            ctx.access(("cell", item))
            ctx.access(("cell", item + 100))  # not declared!

        algorithm = OrderedAlgorithm(
            name="sloppy",
            initial_items=[0, 1],
            priority=lambda x: x,
            visit_rw_sets=visit,
            apply_update=sloppy_body,
            properties=AlgorithmProperties(stable_source=True, no_new_tasks=True),
        )
        with pytest.raises(RWSetViolation):
            run_ikdg(algorithm, SimMachine(2), checked=True)
        with pytest.raises(RWSetViolation):
            run_serial(algorithm, checked=True)


class TestMonotonicityCheck:
    def test_level_executor_rejects_earlier_children(self):
        def body(item, ctx):
            if item == 5:
                ctx.push(1)  # earlier than its own level: not monotonic

        algorithm = OrderedAlgorithm(
            name="time-traveler",
            initial_items=[5],
            priority=lambda x: x,
            visit_rw_sets=lambda item, ctx: ctx.write("cell"),
            apply_update=body,
            properties=AlgorithmProperties(stable_source=True, monotonic=True),
        )
        with pytest.raises(ValueError, match="monotonicity violated"):
            run_level_by_level(algorithm, SimMachine(2))

    def test_level_executor_requires_monotonic_flag(self):
        algorithm = OrderedAlgorithm(
            name="unflagged",
            initial_items=[1],
            priority=lambda x: x,
            visit_rw_sets=lambda item, ctx: None,
            apply_update=lambda item, ctx: None,
            properties=AlgorithmProperties(stable_source=True),
        )
        with pytest.raises(ValueError, match="monotonicity"):
            run_level_by_level(algorithm, SimMachine(1))


class TestAsyncPreconditions:
    def test_async_refused_without_structure_based(self):
        algorithm = OrderedAlgorithm(
            name="not-structural",
            initial_items=[1],
            priority=lambda x: x,
            visit_rw_sets=lambda item, ctx: None,
            apply_update=lambda item, ctx: None,
            properties=AlgorithmProperties(stable_source=True),
        )
        with pytest.raises(ValueError, match="asynchronous"):
            run_kdg_rna(algorithm, SimMachine(2), asynchronous=True)
