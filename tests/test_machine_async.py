"""Unit tests for the event-driven list-scheduling simulator."""

import pytest

from repro.machine import Category, SimMachine, simulate_async


def make_step(durations, children=None, exposed_log=None):
    """A step function from a duration table and a child map."""
    children = children or {}

    def step(task):
        if exposed_log is not None:
            exposed_log.append(task)
        return {Category.EXECUTE: float(durations[task])}, children.get(task, [])

    return step


class TestSimulateAsync:
    def test_independent_tasks_run_in_parallel(self):
        m = SimMachine(4)
        n = simulate_async(m, ["a", "b", "c", "d"], key=lambda t: t,
                           step=make_step({t: 100 for t in "abcd"}))
        assert n == 4
        assert m.elapsed_cycles() == 100.0

    def test_serial_chain_takes_sum(self):
        m = SimMachine(4)
        durations = {0: 10, 1: 20, 2: 30}
        children = {0: [1], 1: [2]}
        n = simulate_async(m, [0], key=lambda t: t, step=make_step(durations, children))
        assert n == 3
        assert m.elapsed_cycles() == 60.0

    def test_fewer_threads_than_tasks(self):
        m = SimMachine(2)
        simulate_async(m, list(range(4)), key=lambda t: t,
                       step=make_step({t: 100 for t in range(4)}))
        assert m.elapsed_cycles() == 200.0

    def test_priority_order_among_available(self):
        m = SimMachine(1)
        order = []
        simulate_async(m, [3, 1, 2], key=lambda t: t,
                       step=make_step({1: 5, 2: 5, 3: 5}, exposed_log=order))
        assert order == [1, 2, 3]

    def test_released_children_wait_for_completion(self):
        # Parent takes 100; the child can only start at t=100, even though
        # a thread is idle the whole time.
        m = SimMachine(2)
        simulate_async(m, ["p"], key=lambda t: t,
                       step=make_step({"p": 100, "q": 50}, {"p": ["q"]}))
        assert m.elapsed_cycles() == 150.0

    def test_diamond_dependence_makespan(self):
        # p -> (a, b) run in parallel; makespan = p + max(a, b).
        m = SimMachine(2)
        simulate_async(m, ["p"], key=lambda t: t,
                       step=make_step({"p": 10, "a": 100, "b": 40}, {"p": ["a", "b"]}))
        assert m.elapsed_cycles() == 110.0

    def test_idle_time_accounted(self):
        m = SimMachine(2)
        simulate_async(m, ["p"], key=lambda t: t,
                       step=make_step({"p": 100, "q": 50}, {"p": ["q"]}))
        # Thread 1 idles the first 100 cycles and the final straggler wait.
        assert m.stats.total(Category.IDLE) > 0

    def test_clocks_aligned_at_end(self):
        m = SimMachine(3)
        simulate_async(m, ["a"], key=lambda t: t, step=make_step({"a": 42}))
        assert m.clocks[0] == m.clocks[1] == m.clocks[2] == 42.0

    def test_empty_initial_set(self):
        m = SimMachine(2)
        assert simulate_async(m, [], key=lambda t: t, step=make_step({})) == 0
        assert m.elapsed_cycles() == 0.0

    def test_breakdown_categories_preserved(self):
        m = SimMachine(1)

        def step(task):
            return {Category.EXECUTE: 10.0, Category.SCHEDULE: 4.0}, []

        simulate_async(m, ["x"], key=lambda t: t, step=step)
        assert m.stats.total(Category.EXECUTE) == 10.0
        assert m.stats.total(Category.SCHEDULE) == 4.0

    def test_work_conservation(self):
        # Total busy cycles equal the sum of step durations regardless of
        # the thread count.
        durations = {t: 10 * (t + 1) for t in range(6)}
        for threads in (1, 2, 4):
            m = SimMachine(threads)
            simulate_async(m, list(durations), key=lambda t: t,
                           step=make_step(durations))
            assert m.stats.total(Category.EXECUTE) == pytest.approx(
                sum(durations.values())
            )

    def test_makespan_never_below_critical_path(self):
        m = SimMachine(8)
        durations = {"p": 50, "c": 60, "g": 70}
        simulate_async(m, ["p"], key=lambda t: t,
                       step=make_step(durations, {"p": ["c"], "c": ["g"]}))
        assert m.elapsed_cycles() == 180.0
